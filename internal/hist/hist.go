// Package hist implements fixed-bucket latency histograms in the
// Prometheus style: a static set of ascending upper bounds (an implicit
// +Inf bucket on top), lock-free atomic observation counters, and an exact
// nanosecond sum next to them. One Histogram type serves both sides of a
// load test — flownetd's per-route serving telemetry (internal/server,
// exported at /stats and /metrics) and cmd/flowload's client-observed
// latencies — so server- and client-side tails are bucketed identically
// and directly comparable.
//
// Design constraints, in order:
//
//   - Observation is on the request hot path: one binary search over ~18
//     floats plus two atomic adds, no locks, no allocation.
//   - The sum is kept in integer nanoseconds, not float seconds, so it is
//     exact (no float rounding accumulates) and exporters can derive the
//     seconds value losslessly at read time.
//   - Quantiles are estimated from the buckets by linear interpolation,
//     the same estimate a Prometheus histogram_quantile() would produce,
//     so a dashboard over /metrics and a BENCH_load.json report agree.
package hist

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// DefaultBounds are the upper bucket bounds (seconds) used for serving
// latency, chosen for flownetd's observed dynamic range: cached replays
// answer in tens of microseconds, ordinary flow queries in hundreds of
// microseconds to tens of milliseconds, and heavy batch or pattern queries
// can run for minutes. The grid is roughly multiplicative (x2–x2.5 per
// step, a 1-2.5-5 decade pattern) so relative quantile-estimation error is
// bounded at every scale; see DESIGN.md "Latency telemetry" for the
// rationale.
var DefaultBounds = []float64{
	0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05,
	0.1, 0.25, 0.5,
	1, 2.5, 5,
	10, 30, 60,
}

// Histogram is a fixed-bucket histogram safe for concurrent use. Create
// one with New (or NewDefault); the zero value is not usable.
type Histogram struct {
	bounds []float64
	// counts[i] counts observations in (bounds[i-1], bounds[i]]; the last
	// slot is the +Inf bucket. Per-bucket (not cumulative) so Observe
	// touches exactly one counter.
	counts []atomic.Uint64
	sumNs  atomic.Int64
}

// New returns a histogram over the given ascending upper bounds (seconds).
// The bounds are copied. New panics on unsorted, duplicate, or non-finite
// bounds — a histogram's shape is a compile-time decision, not an input.
func New(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	for i, v := range b {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			panic("hist: bounds must be finite (the +Inf bucket is implicit)")
		}
		if i > 0 && v <= b[i-1] {
			panic("hist: bounds must be strictly ascending")
		}
	}
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// NewDefault returns a histogram over DefaultBounds.
func NewDefault() *Histogram { return New(DefaultBounds) }

// Observe records one duration. Negative durations clamp to zero (they can
// only come from a clock step; the zero bucket keeps them visible without
// corrupting the sum's sign).
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	// sort.SearchFloat64s returns the first bound >= the value: exactly the
	// Prometheus "le" bucket the observation belongs to; values above every
	// bound land on len(bounds), the +Inf slot.
	i := sort.SearchFloat64s(h.bounds, d.Seconds())
	// The sum lands before the bucket count: a Snapshot (which reads counts
	// before the sum) therefore never sees a counted observation whose
	// nanoseconds are still missing, so a mean derived from one snapshot
	// cannot under-report.
	h.sumNs.Add(d.Nanoseconds())
	h.counts[i].Add(1)
}

// Bounds returns the histogram's upper bounds (not a copy; callers must
// not modify it).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// Snapshot is a point-in-time copy of a Histogram's counters.
type Snapshot struct {
	// Bounds are the finite upper bounds (seconds); Counts has one more
	// entry, the +Inf bucket, and is per-bucket, not cumulative.
	Bounds []float64
	Counts []uint64
	// Count is the total observation count — by construction exactly the
	// sum of Counts, i.e. what the top cumulative (+Inf) bucket reports.
	Count uint64
	// SumNs is the exact accumulated duration in nanoseconds.
	SumNs int64
}

// Snapshot copies the current counters. Concurrent observations may or may
// not be included; Count always equals the sum of Counts (the exposition
// invariant "_count == the +Inf bucket" holds for every snapshot). Bucket
// counts are read before the sum, pairing with Observe's write order: the
// snapshot's SumNs covers at least every observation it counted, so an
// average derived from one snapshot may over-report a hair under
// concurrency but never under-report.
func (h *Histogram) Snapshot() Snapshot {
	s := Snapshot{Bounds: h.bounds, Counts: make([]uint64, len(h.counts))}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.SumNs = h.sumNs.Load()
	return s
}

// Cumulative returns the running totals of Counts — the values of the
// Prometheus _bucket samples, ending with the total count under +Inf.
func (s Snapshot) Cumulative() []uint64 {
	cum := make([]uint64, len(s.Counts))
	var total uint64
	for i, c := range s.Counts {
		total += c
		cum[i] = total
	}
	return cum
}

// Quantile estimates the q-quantile (0 <= q <= 1) in seconds by linear
// interpolation inside the bucket holding the target rank, the
// histogram_quantile() estimate. Observations in the +Inf bucket are
// reported as the largest finite bound (the estimate cannot exceed what
// the buckets resolve). Returns 0 when the histogram is empty.
func (s Snapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum uint64
	for i, c := range s.Counts {
		prev := cum
		cum += c
		if float64(cum) < rank || c == 0 {
			continue
		}
		if i == len(s.Bounds) {
			// +Inf bucket: no finite upper edge to interpolate toward.
			if len(s.Bounds) == 0 {
				return 0
			}
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		return lo + (hi-lo)*(rank-float64(prev))/float64(c)
	}
	// Unreachable: cum == Count >= rank by the time the loop ends.
	return s.Bounds[len(s.Bounds)-1]
}

// Mean returns the exact mean observation in seconds (0 when empty).
func (s Snapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.SumNs) / 1e9 / float64(s.Count)
}
