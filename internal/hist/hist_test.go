package hist

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestObserveBucketing(t *testing.T) {
	h := New([]float64{0.001, 0.01, 0.1})
	for _, d := range []time.Duration{
		500 * time.Microsecond, // <= 0.001
		time.Millisecond,       // == 0.001 (le is inclusive)
		5 * time.Millisecond,   // <= 0.01
		50 * time.Millisecond,  // <= 0.1
		time.Second,            // +Inf
		-time.Second,           // clamps to 0, lands in the first bucket
	} {
		h.Observe(d)
	}
	s := h.Snapshot()
	want := []uint64{3, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d: got %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 6 {
		t.Errorf("Count = %d, want 6", s.Count)
	}
	// The clamped negative contributes 0 ns; everything else sums exactly.
	wantNs := (500*time.Microsecond + time.Millisecond + 5*time.Millisecond +
		50*time.Millisecond + time.Second).Nanoseconds()
	if s.SumNs != wantNs {
		t.Errorf("SumNs = %d, want %d", s.SumNs, wantNs)
	}
	cum := s.Cumulative()
	if got := cum[len(cum)-1]; got != s.Count {
		t.Errorf("top cumulative bucket = %d, want Count %d", got, s.Count)
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Errorf("cumulative counts must be monotone: %v", cum)
		}
	}
}

func TestQuantile(t *testing.T) {
	h := New([]float64{0.001, 0.01, 0.1, 1})
	// 90 observations in (0.001, 0.01], 10 in (0.1, 1].
	for i := 0; i < 90; i++ {
		h.Observe(5 * time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(500 * time.Millisecond)
	}
	s := h.Snapshot()
	// p50 rank 50 falls in the 90-strong bucket: 0.001 + 0.009*50/90.
	if got, want := s.Quantile(0.5), 0.001+0.009*50/90; math.Abs(got-want) > 1e-12 {
		t.Errorf("p50 = %v, want %v", got, want)
	}
	// p99 rank 99 falls in the top occupied bucket (0.1, 1].
	if got, want := s.Quantile(0.99), 0.1+0.9*9/10; math.Abs(got-want) > 1e-12 {
		t.Errorf("p99 = %v, want %v", got, want)
	}
	// Quantiles are monotone in q.
	prev := -1.0
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.95, 0.99, 1} {
		v := s.Quantile(q)
		if v < prev {
			t.Errorf("Quantile(%v) = %v < previous %v", q, v, prev)
		}
		prev = v
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	h := NewDefault()
	if got := h.Snapshot().Quantile(0.99); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
	// Everything in the +Inf bucket: the estimate caps at the top bound.
	h.Observe(10 * time.Minute)
	top := DefaultBounds[len(DefaultBounds)-1]
	if got := h.Snapshot().Quantile(0.5); got != top {
		t.Errorf("+Inf-only quantile = %v, want top bound %v", got, top)
	}
	// Out-of-range q clamps instead of panicking.
	s := h.Snapshot()
	if s.Quantile(-1) != s.Quantile(0) || s.Quantile(2) != s.Quantile(1) {
		t.Error("out-of-range q must clamp to [0,1]")
	}
}

func TestMeanExact(t *testing.T) {
	h := NewDefault()
	h.Observe(time.Millisecond)
	h.Observe(3 * time.Millisecond)
	s := h.Snapshot()
	if s.SumNs != 4e6 {
		t.Fatalf("SumNs = %d, want 4000000", s.SumNs)
	}
	if got := s.Mean(); got != 0.002 {
		t.Errorf("Mean = %v, want 0.002", got)
	}
}

func TestNewValidation(t *testing.T) {
	for name, bounds := range map[string][]float64{
		"descending": {2, 1},
		"duplicate":  {1, 1},
		"nan":        {math.NaN()},
		"inf":        {1, math.Inf(1)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%s) must panic", name)
				}
			}()
			New(bounds)
		}()
	}
}

// TestConcurrentSnapshotInvariants hammers Observe from many goroutines
// while snapshotting: every snapshot must be internally consistent (Count
// equals the bucket sum — the "+Inf bucket == _count" exposition
// invariant) and its mean must never under-report. All observations are
// exactly 1ms, so any subset's true mean is 1ms; the write order (sum
// before count) guarantees SumNs covers every counted observation, i.e.
// mean >= 1ms within float error.
func TestConcurrentSnapshotInvariants(t *testing.T) {
	h := NewDefault()
	const workers, perWorker = 8, 2000
	var observers, snapshotter sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		observers.Add(1)
		go func() {
			defer observers.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(time.Millisecond)
			}
		}()
	}
	snapshotter.Add(1)
	go func() {
		defer snapshotter.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			var sum uint64
			for _, c := range s.Counts {
				sum += c
			}
			if sum != s.Count {
				t.Errorf("snapshot Count %d != bucket sum %d", s.Count, sum)
				return
			}
			if s.Count > 0 && s.SumNs < int64(s.Count)*int64(time.Millisecond) {
				t.Errorf("mean under-reports: SumNs %d for %d 1ms observations", s.SumNs, s.Count)
				return
			}
		}
	}()
	observers.Wait()
	close(stop)
	snapshotter.Wait()

	s := h.Snapshot()
	if s.Count != workers*perWorker {
		t.Fatalf("final Count = %d, want %d", s.Count, workers*perWorker)
	}
	if s.SumNs != int64(workers*perWorker)*int64(time.Millisecond) {
		t.Fatalf("final SumNs = %d, want %d", s.SumNs, int64(workers*perWorker)*int64(time.Millisecond))
	}
}
