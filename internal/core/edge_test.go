package core

import (
	"math"
	"testing"

	"flownet/internal/teg"
	"flownet/internal/tin"
)

func TestSimplifyChainEndingAtSink(t *testing.T) {
	// Whole graph is one chain s->a->b->t: simplification collapses it to a
	// single (s,t) edge whose total equals the chain flow.
	g := tin.NewGraph(4, 0, 3)
	g.AddSeq(g.AddEdge(0, 1), [2]float64{1, 5}, [2]float64{6, 2})
	g.AddSeq(g.AddEdge(1, 2), [2]float64{2, 3}, [2]float64{7, 9})
	g.AddSeq(g.AddEdge(2, 3), [2]float64{3, 2}, [2]float64{8, 4})
	g.Finalize()
	want := Greedy(g)
	st := Simplify(g)
	if st.ChainsReduced != 1 || st.Vertices != 2 {
		t.Errorf("stats=%+v, want 1 chain, 2 vertices", st)
	}
	if g.NumLiveEdges() != 1 {
		t.Fatalf("edges=%d, want 1", g.NumLiveEdges())
	}
	e := g.FindEdge(0, 3)
	total := 0.0
	for _, ia := range g.Edges[e].Seq {
		total += ia.Qty
	}
	if math.Abs(total-want) > 1e-9 {
		t.Errorf("reduced edge total=%g, want %g", total, want)
	}
}

func TestSimplifyIgnoresNonSourceChains(t *testing.T) {
	// A chain in the middle of the graph (not source-anchored) must not be
	// touched: Lemma 3 only covers chains from the source.
	g := tin.NewGraph(6, 0, 5) // s, a, b, c, d, t: s->{a,b}, a->c->d->t, b->t... c,d chain but from a
	g.AddSeq(g.AddEdge(0, 1), [2]float64{1, 5})
	g.AddSeq(g.AddEdge(0, 2), [2]float64{2, 5})
	g.AddSeq(g.AddEdge(1, 3), [2]float64{3, 4})
	g.AddSeq(g.AddEdge(3, 4), [2]float64{4, 3})
	g.AddSeq(g.AddEdge(4, 5), [2]float64{5, 2})
	g.AddSeq(g.AddEdge(2, 5), [2]float64{6, 1})
	g.Finalize()
	// Chains from s: s->a is followed by a with in/out degree 1... a's
	// in-degree is 1 and out-degree 1, so s->a->c->d->t IS a source chain.
	// It reduces fully. Verify flow preservation either way.
	before := teg.MaxFlow(g)
	Simplify(g)
	if math.Abs(teg.MaxFlow(g)-before) > 1e-9 {
		t.Errorf("flow changed")
	}
}

func TestSimplifyStopsAtBranchingVertex(t *testing.T) {
	// s->a->b where b branches: the chain is s->a->b only (b is the chain
	// end, not an inner vertex).
	g := tin.NewGraph(5, 0, 4) // s,a,b,c,t
	g.AddSeq(g.AddEdge(0, 1), [2]float64{1, 9})
	g.AddSeq(g.AddEdge(1, 2), [2]float64{2, 8})
	g.AddSeq(g.AddEdge(2, 3), [2]float64{3, 4})
	g.AddSeq(g.AddEdge(2, 4), [2]float64{4, 4})
	g.AddSeq(g.AddEdge(3, 4), [2]float64{5, 4})
	g.Finalize()
	before := teg.MaxFlow(g)
	st := Simplify(g)
	if st.ChainsReduced != 1 {
		t.Errorf("chains=%d, want 1", st.ChainsReduced)
	}
	if !g.VertexAlive(2) {
		t.Errorf("branching vertex b must survive")
	}
	if g.VertexAlive(1) {
		t.Errorf("inner chain vertex a must be removed")
	}
	if math.Abs(teg.MaxFlow(g)-before) > 1e-9 {
		t.Errorf("flow changed")
	}
}

func TestPreprocessDeletesSourceOnCollapse(t *testing.T) {
	// Everything downstream of s dies, so deletion propagates up to the
	// source: zero flow.
	g := tin.NewGraph(4, 0, 3)                  // s, a, b, t
	g.AddSeq(g.AddEdge(0, 1), [2]float64{5, 2}) // s->a
	g.AddSeq(g.AddEdge(1, 2), [2]float64{1, 2}) // a->b: too early, dies
	g.AddSeq(g.AddEdge(2, 3), [2]float64{9, 5}) // b->t: b loses incoming, dies
	g.Finalize()
	if _, err := Preprocess(g); err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	if !ZeroFlow(g) {
		t.Fatalf("expected zero flow after collapse:\n%s", g)
	}
	if g.VertexAlive(1) || g.VertexAlive(2) {
		t.Errorf("inner vertices should be deleted")
	}
}

func TestPreprocessUpstreamRecursion(t *testing.T) {
	// w -> v chain where v loses its only out-edge: both w and v must go,
	// recursively (lines 18-22 of Algorithm 1).
	g := tin.NewGraph(6, 0, 5)                  // s, w, v, x, y, t
	g.AddSeq(g.AddEdge(0, 1), [2]float64{2, 5}) // s->w
	g.AddSeq(g.AddEdge(1, 2), [2]float64{3, 5}) // w->v
	g.AddSeq(g.AddEdge(2, 3), [2]float64{1, 5}) // v->x: too early -> dies
	g.AddSeq(g.AddEdge(0, 3), [2]float64{4, 2}) // s->x keeps x alive
	g.AddSeq(g.AddEdge(3, 4), [2]float64{5, 2}) // x->y
	g.AddSeq(g.AddEdge(4, 5), [2]float64{6, 2}) // y->t
	g.Finalize()
	if _, err := Preprocess(g); err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	if g.VertexAlive(2) {
		t.Errorf("v should be deleted (no outgoing edges)")
	}
	if g.VertexAlive(1) {
		t.Errorf("w should be deleted recursively (its only out-edge led to v)")
	}
	if !g.VertexAlive(3) || !g.VertexAlive(4) {
		t.Errorf("x and y must survive")
	}
	if f := Greedy(g); f != 2 {
		t.Errorf("flow=%g, want 2", f)
	}
}

func TestGreedySolubleIgnoresDeadVertices(t *testing.T) {
	g := figure3() // y has out-degree 2: not soluble
	if GreedySoluble(g) {
		t.Fatalf("precondition failed")
	}
	// Killing one of y's out-edges makes every inner vertex out-degree 1.
	g.DeleteEdge(g.FindEdge(1, 2))
	if !GreedySoluble(g) {
		t.Errorf("soluble after deleting y->z")
	}
	h := figure3()
	h.DeleteVertex(1) // deleting y entirely: only z remains inner
	if !GreedySoluble(h) {
		t.Errorf("soluble after deleting y")
	}
}

func TestGreedyTraceRowCount(t *testing.T) {
	g := figure3()
	rows := GreedyTrace(g)
	if len(rows) != g.NumInteractions() {
		t.Errorf("rows=%d, want %d", len(rows), g.NumInteractions())
	}
	for _, r := range rows {
		if len(r) != g.NumV {
			t.Errorf("row width=%d, want %d", len(r), g.NumV)
		}
	}
}

func TestGreedyArrivalsOrdered(t *testing.T) {
	g := figure1a()
	_, arr := GreedyArrivals(g)
	for i := 1; i < len(arr); i++ {
		if arr[i-1].Ord >= arr[i].Ord {
			t.Errorf("arrivals not in canonical order: %v", arr)
		}
	}
	var total float64
	for _, a := range arr {
		total += a.Qty
	}
	if math.Abs(total-Greedy(g)) > 1e-9 {
		t.Errorf("arrival sum %g != greedy flow %g", total, Greedy(g))
	}
}

func TestLPModelCounts(t *testing.T) {
	g := figure3()
	m := BuildLP(g)
	// Variables: interactions not from source: y->z, y->t, z->t = 3.
	if m.Prob.NumVars() != 3 {
		t.Errorf("vars=%d, want 3", m.Prob.NumVars())
	}
	// One constraint per such interaction.
	if m.Prob.NumConstraints() != 3 {
		t.Errorf("constraints=%d, want 3", m.Prob.NumConstraints())
	}
	if m.ConstFlow != 0 {
		t.Errorf("no direct source->sink edges, ConstFlow=%g", m.ConstFlow)
	}
}

func TestLPModelDirectSourceSink(t *testing.T) {
	g := tin.NewGraph(3, 0, 2)
	g.AddSeq(g.AddEdge(0, 2), [2]float64{1, 7}) // direct s->t
	g.AddSeq(g.AddEdge(0, 1), [2]float64{2, 3})
	g.AddSeq(g.AddEdge(1, 2), [2]float64{3, 2})
	g.Finalize()
	m := BuildLP(g)
	if m.ConstFlow != 7 {
		t.Errorf("ConstFlow=%g, want 7", m.ConstFlow)
	}
	f, err := MaxFlowLP(g)
	if err != nil || math.Abs(f-9) > 1e-9 {
		t.Errorf("flow=%g (%v), want 9", f, err)
	}
}

func TestWindowRestrictionComposesWithPipelines(t *testing.T) {
	// The §7 time-restricted variant: flows within a window, computed by
	// the unchanged machinery on the restricted graph.
	g := figure1a()
	w := g.RestrictWindow(2, 9) // drops (1,3) on s->x and (10,1) on z->t
	res, err := PreSim(w, EngineLP)
	if err != nil {
		t.Fatalf("PreSim: %v", err)
	}
	// Without (1,3), x never has funds before its (5,5) out-interaction;
	// y's 6 units still split 4 to t and cannot reach t via z (z->t's only
	// remaining interaction (2,3) precedes all inflows): flow 4.
	if math.Abs(res.Flow-4) > 1e-9 {
		t.Errorf("windowed flow=%g, want 4", res.Flow)
	}
	if f := teg.MaxFlow(w); math.Abs(f-4) > 1e-9 {
		t.Errorf("TEG windowed flow=%g, want 4", f)
	}
}
