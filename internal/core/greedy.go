// Package core implements the flow-computation algorithms of Kosyfaki et
// al., "Flow Computation in Temporal Interaction Networks" (ICDE 2021):
//
//   - Greedy flow computation (Section 4.1): a single scan of the
//     interactions in canonical order.
//   - The greedy-solubility test (Lemmas 1 and 2, Section 4.2.2).
//   - DAG preprocessing (Algorithm 1, Section 4.2.3).
//   - Graph simplification (Algorithm 2, Section 4.2.4).
//   - The LP formulation of temporal maximum flow (Section 4.2.1), solved
//     with the bounded-variable simplex of internal/lp.
//   - The Pre and PreSim pipelines evaluated in Section 6.2, with a
//     pluggable exact engine (LP, or the time-expanded reduction of
//     internal/teg).
//
// All algorithms interpret "before" via the canonical interaction order
// defined by package tin, so greedy, LP and the time-expanded reduction
// agree exactly, including on inputs with duplicate timestamps.
//
// # Concurrency
//
// This package keeps no hidden shared state: there are no package-level
// mutable variables, and every algorithm works exclusively on its argument
// graph (the LP and TEG engines build fresh problem instances per call).
// Concurrent calls on distinct graphs are therefore always safe — this is
// what BatchPreSim and the parallel pattern searches rely on. The
// non-mutating entry points (Greedy, GreedySoluble, Pre, PreSim, MaxFlow,
// MaxFlowLP) are additionally safe to call concurrently on the same graph:
// they treat the input as read-only and clone it before any modification.
// Preprocess and Simplify mutate their argument in place and must not run
// concurrently with any other use of the same graph.
package core

import (
	"math"

	"flownet/internal/tin"
)

// Greedy computes the greedy flow of g (Definition 5): interactions are
// processed in canonical order and each transfers the maximum possible
// quantity min(q, B_v) from its origin's buffer. The result is the quantity
// buffered at the sink after the last interaction.
//
// Greedy runs in O(n log n) for n interactions (the log factor is the event
// sort) and is exact for the maximum-flow problem whenever GreedySoluble
// reports true.
func Greedy(g *tin.Graph) float64 {
	buf := make([]float64, g.NumV)
	buf[g.Source] = math.Inf(1)
	for _, ev := range g.Events() {
		q := math.Min(ev.Qty, buf[ev.From])
		if q <= 0 {
			continue
		}
		if !math.IsInf(buf[ev.From], 1) {
			buf[ev.From] -= q
		}
		buf[ev.To] += q
	}
	return buf[g.Sink]
}

// Arrival is one positive greedy transfer into a designated vertex: the
// triggering interaction's time and canonical position, with the quantity
// actually moved.
type Arrival = tin.Interaction

// GreedyArrivals runs the greedy scan and returns the total flow together
// with the sequence of positive arrivals at the sink: one entry per
// interaction entering the sink that transferred a positive quantity, with
// Qty set to the transferred amount and Time/Ord inherited from the
// triggering interaction. Per Lemma 3 this sequence fully characterizes the
// quantity available at the sink at every time, which is what graph
// simplification and the pattern path tables store.
func GreedyArrivals(g *tin.Graph) (float64, []Arrival) {
	buf := make([]float64, g.NumV)
	buf[g.Source] = math.Inf(1)
	var arrivals []Arrival
	for _, ev := range g.Events() {
		q := math.Min(ev.Qty, buf[ev.From])
		if q <= 0 {
			continue
		}
		if !math.IsInf(buf[ev.From], 1) {
			buf[ev.From] -= q
		}
		buf[ev.To] += q
		if ev.To == g.Sink {
			arrivals = append(arrivals, Arrival{Time: ev.Time, Qty: q, Ord: ev.Ord})
		}
	}
	return buf[g.Sink], arrivals
}

// GreedyTrace reproduces the paper's Table 2: it returns the buffer vector
// after each processed interaction (the source buffer is +inf throughout).
// Row i corresponds to the i-th interaction in canonical order. Intended
// for examples, documentation and tests; use Greedy for computation.
func GreedyTrace(g *tin.Graph) [][]float64 {
	buf := make([]float64, g.NumV)
	buf[g.Source] = math.Inf(1)
	var rows [][]float64
	for _, ev := range g.Events() {
		q := math.Min(ev.Qty, buf[ev.From])
		if q > 0 {
			if !math.IsInf(buf[ev.From], 1) {
				buf[ev.From] -= q
			}
			buf[ev.To] += q
		}
		rows = append(rows, append([]float64(nil), buf...))
	}
	return rows
}

// GreedySoluble implements the O(V) check of Lemma 2: the greedy algorithm
// computes the maximum flow if every live vertex other than the source and
// the sink has exactly one live outgoing edge. (Chains, Lemma 1, are the
// special case where in-degrees are also one.)
//
// The condition is evaluated on the live subgraph, so it can be re-applied
// after preprocessing has removed edges (as the Pre pipeline does).
func GreedySoluble(g *tin.Graph) bool {
	for v := 0; v < g.NumV; v++ {
		vid := tin.VertexID(v)
		if !g.VertexAlive(vid) || vid == g.Source || vid == g.Sink {
			continue
		}
		if g.OutDegree(vid) != 1 {
			return false
		}
	}
	return true
}

// IsChain reports whether the live subgraph is a chain (Lemma 1): a single
// path from source to sink where every inner vertex has exactly one live
// incoming and one live outgoing edge.
func IsChain(g *tin.Graph) bool {
	if g.OutDegree(g.Source) != 1 || g.InDegree(g.Sink) != 1 {
		return false
	}
	v := g.Source
	visited := 1
	for v != g.Sink {
		if v != g.Source && (g.InDegree(v) != 1 || g.OutDegree(v) != 1) {
			return false
		}
		e := g.FirstOutEdge(v)
		v = g.Edges[e].To
		visited++
		if visited > g.NumLiveVertices() {
			return false // cycle guard
		}
	}
	return visited == g.NumLiveVertices()
}
