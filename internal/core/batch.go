package core

import (
	"context"
	"sync"

	"flownet/internal/par"
	"flownet/internal/tin"
)

// This file implements batched flow computation: running the Pre/PreSim
// pipeline over many independent flow instances on a bounded worker pool.
// It is safe because nothing in this package keeps hidden shared state —
// see the package comment's Concurrency section. Results are returned in
// input order and each item's Result is byte-identical to what a
// sequential loop over Pre/PreSim would produce, since the items never
// interact.

// BatchPreSim runs the complete PreSim pipeline on every graph, on at most
// par.Workers(workers) goroutines (workers = 0 selects GOMAXPROCS, 1 runs
// sequentially). Results are returned in input order. Every item is
// attempted even if another fails; the returned error is the error of the
// lowest-indexed failed item (its Result slot is zero), or nil.
func BatchPreSim(gs []*tin.Graph, engine Engine, workers int) ([]Result, error) {
	return batch(gs, engine, workers, true)
}

// BatchPre is BatchPreSim without the Algorithm 2 simplification step
// (the paper's "Pre" method).
func BatchPre(gs []*tin.Graph, engine Engine, workers int) ([]Result, error) {
	return batch(gs, engine, workers, false)
}

func batch(gs []*tin.Graph, engine Engine, workers int, simplify bool) ([]Result, error) {
	results := make([]Result, len(gs))
	errs := make([]error, len(gs))
	par.ForEach(par.Workers(workers), len(gs), func(i int) {
		r, err := pipeline(gs[i], engine, simplify)
		if err != nil {
			errs[i] = err
			return
		}
		results[i] = r
	})
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// SeedResult is one BatchSeeds outcome: the seed vertex, whether a flow
// subgraph existed around it, and — if so — the pipeline result.
type SeedResult struct {
	Seed tin.VertexID
	// Ok is false when the seed has no returning-path subgraph (or the
	// subgraph exceeded the extraction size cap); Result is zero then.
	Ok bool
	Result
}

// BatchSeeds runs the Section 6.2 per-seed experiment concurrently: for
// every seed vertex it extracts the returning-path flow subgraph
// (Figure 10) from the shared network — ExtractSubgraph only reads the
// finalized network, so concurrent extraction is safe — and solves it with
// the PreSim pipeline. Results are in seed order, identical to a
// sequential loop. The returned error is the lowest-indexed pipeline
// failure, or nil.
func BatchSeeds(n *tin.Network, seeds []tin.VertexID, extract tin.ExtractOptions, engine Engine, workers int) ([]SeedResult, error) {
	return BatchSeedsContext(context.Background(), n, seeds, extract, engine, workers)
}

// BatchSeedsContext is BatchSeeds with cooperative cancellation: every
// worker checks ctx before starting a seed, so once ctx is cancelled (a
// client disconnected, a deadline passed) the remaining seeds are skipped
// and the call returns ctx's error. Seeds already in flight run to
// completion — the flow pipeline itself is not interruptible — which bounds
// the post-cancellation work to at most one subgraph per worker.
func BatchSeedsContext(ctx context.Context, n *tin.Network, seeds []tin.VertexID, extract tin.ExtractOptions, engine Engine, workers int) ([]SeedResult, error) {
	results := make([]SeedResult, len(seeds))
	errs := make([]error, len(seeds))
	// Extraction scratch is pooled across seeds: with W workers the batch
	// settles on W scratches total instead of allocating marks and stacks
	// for every seed.
	var scratch sync.Pool
	par.ForEach(par.Workers(workers), len(seeds), func(i int) {
		results[i].Seed = seeds[i]
		if ctx.Err() != nil {
			return
		}
		sc, _ := scratch.Get().(*tin.QueryScratch)
		if sc == nil {
			sc = tin.NewQueryScratch()
		}
		g, ok := n.ExtractSubgraphScratch(seeds[i], extract, sc)
		scratch.Put(sc)
		if !ok {
			return
		}
		r, err := pipeline(g, engine, true)
		if err != nil {
			errs[i] = err
			return
		}
		results[i].Ok = true
		results[i].Result = r
	})
	if err := ctx.Err(); err != nil {
		return results, err
	}
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}
