package core

import (
	"testing"

	"flownet/internal/datagen"
	"flownet/internal/tin"
)

// batchTestGraphs extracts a small §6.2 subgraph corpus to batch over.
func batchTestGraphs(t *testing.T) (*tin.Network, []tin.VertexID, []*tin.Graph) {
	t.Helper()
	n := datagen.Prosper(datagen.Config{Vertices: 200, Seed: 9})
	var seeds []tin.VertexID
	var gs []*tin.Graph
	for v := 0; v < n.NumVertices() && len(gs) < 40; v++ {
		if g, ok := n.ExtractSubgraph(tin.VertexID(v), tin.DefaultExtractOptions()); ok {
			seeds = append(seeds, tin.VertexID(v))
			gs = append(gs, g)
		}
	}
	if len(gs) < 5 {
		t.Fatalf("only %d subgraphs extracted", len(gs))
	}
	return n, seeds, gs
}

// TestBatchPreSimMatchesSequential checks that the batched pipeline equals
// a sequential loop over PreSim, item for item, for several worker counts.
// Under -race this also exercises the package's concurrent-use guarantee.
func TestBatchPreSimMatchesSequential(t *testing.T) {
	_, _, gs := batchTestGraphs(t)
	want := make([]Result, len(gs))
	for i, g := range gs {
		r, err := PreSim(g, EngineLP)
		if err != nil {
			t.Fatalf("PreSim #%d: %v", i, err)
		}
		want[i] = r
	}
	for _, workers := range []int{1, 2, 8} {
		got, err := BatchPreSim(gs, EngineLP, workers)
		if err != nil {
			t.Fatalf("BatchPreSim workers=%d: %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("workers=%d item %d: %+v, want %+v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestBatchPreMatchesPre covers the Pre (no simplification) variant.
func TestBatchPreMatchesPre(t *testing.T) {
	_, _, gs := batchTestGraphs(t)
	got, err := BatchPre(gs, EngineLP, 4)
	if err != nil {
		t.Fatalf("BatchPre: %v", err)
	}
	for i, g := range gs {
		want, err := Pre(g, EngineLP)
		if err != nil {
			t.Fatalf("Pre #%d: %v", i, err)
		}
		if got[i] != want {
			t.Errorf("item %d: %+v, want %+v", i, got[i], want)
		}
	}
}

// TestBatchSeeds checks the end-to-end per-seed batch against individual
// extraction + PreSim, including seeds with no returning-path subgraph.
func TestBatchSeeds(t *testing.T) {
	n, _, _ := batchTestGraphs(t)
	seeds := make([]tin.VertexID, n.NumVertices())
	for i := range seeds {
		seeds[i] = tin.VertexID(i)
	}
	got, err := BatchSeeds(n, seeds, tin.DefaultExtractOptions(), EngineLP, 8)
	if err != nil {
		t.Fatalf("BatchSeeds: %v", err)
	}
	if len(got) != len(seeds) {
		t.Fatalf("%d results for %d seeds", len(got), len(seeds))
	}
	okCount := 0
	for i, r := range got {
		if r.Seed != seeds[i] {
			t.Fatalf("result %d reports seed %d", i, r.Seed)
		}
		g, ok := n.ExtractSubgraph(seeds[i], tin.DefaultExtractOptions())
		if ok != r.Ok {
			t.Errorf("seed %d: Ok=%v, extraction says %v", r.Seed, r.Ok, ok)
			continue
		}
		if !ok {
			continue
		}
		okCount++
		want, err := PreSim(g, EngineLP)
		if err != nil {
			t.Fatalf("PreSim seed %d: %v", r.Seed, err)
		}
		if r.Result != want {
			t.Errorf("seed %d: %+v, want %+v", r.Seed, r.Result, want)
		}
	}
	if okCount == 0 {
		t.Errorf("no seed produced a subgraph; test vacuous")
	}
}
