package core

import (
	"fmt"
	"math"

	"flownet/internal/tin"
)

// PreprocessStats reports what Algorithm 1 removed.
type PreprocessStats struct {
	Interactions int // interactions deleted (not counting those on deleted edges)
	Edges        int // edges deleted (including via vertex deletion)
	Vertices     int // vertices deleted
}

// Preprocess applies the paper's Algorithm 1 (DAG preprocessing) to g in
// place: considering non-source, non-sink vertices in topological order, it
// deletes from each vertex's outgoing edges every interaction that precedes
// (in canonical order) all interactions entering the vertex — such an
// interaction cannot forward any quantity. Emptied edges are deleted;
// vertices left without incoming edges are deleted together with their
// outgoing edges, and vertices left without outgoing edges are deleted
// together with their incoming edges, recursively upstream.
//
// Preprocess preserves the maximum flow of the graph and never deletes
// interactions on the source's outgoing edges. The graph must be a DAG.
func Preprocess(g *tin.Graph) (PreprocessStats, error) {
	var st PreprocessStats
	order, err := g.TopoOrder()
	if err != nil {
		return st, fmt.Errorf("core: preprocess: %w", err)
	}

	// deleteUpstream removes v (which has no live outgoing edges) and its
	// incoming edges, recursing into predecessors that lose their last
	// outgoing edge. Mirrors lines 18-22 of Algorithm 1.
	var deleteUpstream func(v tin.VertexID)
	deleteUpstream = func(v tin.VertexID) {
		if !g.VertexAlive(v) {
			return
		}
		var preds []tin.VertexID
		edges := 0
		g.InEdges(v, func(e tin.EdgeID) {
			preds = append(preds, g.Edges[e].From)
			edges++
		})
		g.DeleteVertex(v)
		st.Vertices++
		st.Edges += edges
		for _, w := range preds {
			if w != g.Source && g.VertexAlive(w) && g.OutDegree(w) == 0 {
				deleteUpstream(w)
			}
		}
	}

	for _, v := range order {
		if v == g.Source || v == g.Sink || !g.VertexAlive(v) {
			continue
		}
		if g.InDegree(v) == 0 {
			// No quantity can ever reach v: drop it and its out-edges. The
			// consequences for successors are handled when they are
			// examined (they follow v in topological order).
			st.Edges += g.OutDegree(v)
			g.DeleteVertex(v)
			st.Vertices++
			continue
		}
		// Earliest (canonical) incoming interaction.
		minOrd := int64(math.MaxInt64)
		g.InEdges(v, func(e tin.EdgeID) {
			seq := g.Edges[e].Seq
			if len(seq) > 0 && seq[0].Ord < minOrd {
				minOrd = seq[0].Ord
			}
		})
		// Drop out-interactions that precede every incoming interaction.
		var emptied []tin.EdgeID
		g.OutEdges(v, func(e tin.EdgeID) {
			seq := g.Edges[e].Seq
			keep := 0
			for keep < len(seq) && seq[keep].Ord < minOrd {
				keep++
			}
			if keep > 0 {
				st.Interactions += keep
				g.SetSeq(e, seq[keep:])
			}
			if len(g.Edges[e].Seq) == 0 {
				emptied = append(emptied, e)
			}
		})
		for _, e := range emptied {
			g.DeleteEdge(e)
			st.Edges++
		}
		if g.OutDegree(v) == 0 {
			deleteUpstream(v)
		}
	}
	return st, nil
}

// ZeroFlow reports whether the graph trivially carries no flow from source
// to sink — e.g. after preprocessing has deleted the source, the sink, or
// all edges incident to either.
func ZeroFlow(g *tin.Graph) bool {
	return !g.VertexAlive(g.Source) || !g.VertexAlive(g.Sink) ||
		g.OutDegree(g.Source) == 0 || g.InDegree(g.Sink) == 0
}
