package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"flownet/internal/datagen"
	"flownet/internal/teg"
	"flownet/internal/tin"
)

const ftol = 1e-6

func feq(a, b float64) bool {
	if math.IsInf(a, 1) && math.IsInf(b, 1) {
		return true
	}
	return math.Abs(a-b) <= ftol*(1+math.Abs(a)+math.Abs(b))
}

// randGraph draws a random DAG from a seed, shared by all property tests.
func randGraph(seed int64, cfg datagen.DAGConfig) *tin.Graph {
	return datagen.RandomDAG(rand.New(rand.NewSource(seed)), cfg)
}

// TestPropertyLPEqualsTEG certifies the LP solver against the independent
// time-expanded Dinic and Edmonds–Karp solvers on random DAGs.
func TestPropertyLPEqualsTEG(t *testing.T) {
	cfg := datagen.DefaultDAGConfig()
	f := func(seed int64) bool {
		g := randGraph(seed, cfg)
		lpFlow, err := MaxFlowLP(g)
		if err != nil {
			t.Logf("seed %d: LP error: %v", seed, err)
			return false
		}
		tegFlow := teg.MaxFlow(g)
		ekFlow := teg.MaxFlowEdmondsKarp(g)
		if !feq(lpFlow, tegFlow) || !feq(tegFlow, ekFlow) {
			t.Logf("seed %d: LP=%g TEG=%g EK=%g\n%s", seed, lpFlow, tegFlow, ekFlow, g)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyGreedyLowerBoundsMax: greedy flow never exceeds the maximum,
// and equals it on Lemma-2 graphs.
func TestPropertyGreedyLowerBoundsMax(t *testing.T) {
	cfg := datagen.DefaultDAGConfig()
	f := func(seed int64) bool {
		g := randGraph(seed, cfg)
		greedy := Greedy(g)
		max := teg.MaxFlow(g)
		if greedy > max+ftol {
			t.Logf("seed %d: greedy=%g > max=%g", seed, greedy, max)
			return false
		}
		if GreedySoluble(g) && !feq(greedy, max) {
			t.Logf("seed %d: Lemma 2 graph but greedy=%g != max=%g", seed, greedy, max)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyChainsGreedyOptimal: Lemma 1 on random chains.
func TestPropertyChainsGreedyOptimal(t *testing.T) {
	cfg := datagen.DefaultDAGConfig()
	f := func(seed int64, edges uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := datagen.RandomChain(rng, 1+int(edges%8), cfg)
		if !IsChain(g) || !GreedySoluble(g) {
			t.Logf("seed %d: generated chain not recognized as chain", seed)
			return false
		}
		return feq(Greedy(g), teg.MaxFlow(g))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyPreprocessPreservesMaxFlow: Algorithm 1 is flow-preserving
// and idempotent.
func TestPropertyPreprocessPreservesMaxFlow(t *testing.T) {
	cfg := datagen.DefaultDAGConfig()
	f := func(seed int64) bool {
		g := randGraph(seed, cfg)
		before := teg.MaxFlow(g)
		h := g.Clone()
		if _, err := Preprocess(h); err != nil {
			t.Logf("seed %d: preprocess: %v", seed, err)
			return false
		}
		if ZeroFlow(h) {
			return feq(before, 0)
		}
		after := teg.MaxFlow(h)
		if !feq(before, after) {
			t.Logf("seed %d: preprocess changed flow %g -> %g\nbefore:\n%safter:\n%s", seed, before, after, g, h)
			return false
		}
		// Idempotence: a second pass removes nothing.
		st2, err := Preprocess(h)
		if err != nil {
			t.Logf("seed %d: second preprocess: %v", seed, err)
			return false
		}
		if st2.Interactions != 0 || st2.Edges != 0 || st2.Vertices != 0 {
			t.Logf("seed %d: preprocess not idempotent: %+v", seed, st2)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySimplifyPreservesMaxFlow: Algorithm 2 is flow-preserving and
// reaches a fixpoint with no remaining source chains.
func TestPropertySimplifyPreservesMaxFlow(t *testing.T) {
	cfg := datagen.DefaultDAGConfig()
	f := func(seed int64) bool {
		g := randGraph(seed, cfg)
		before := teg.MaxFlow(g)
		h := g.Clone()
		Simplify(h)
		if ZeroFlow(h) {
			return feq(before, 0)
		}
		after := teg.MaxFlow(h)
		if !feq(before, after) {
			t.Logf("seed %d: simplify changed flow %g -> %g\nbefore:\n%safter:\n%s", seed, before, after, g, h)
			return false
		}
		// Fixpoint: no inner vertex adjacent to the source forms a chain.
		st2 := Simplify(h)
		if st2.ChainsReduced != 0 {
			t.Logf("seed %d: simplify left a reducible chain", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyPipelinesAgree: Pre and PreSim (both engines) compute the
// same maximum flow as the raw solvers.
func TestPropertyPipelinesAgree(t *testing.T) {
	cfg := datagen.DefaultDAGConfig()
	f := func(seed int64) bool {
		g := randGraph(seed, cfg)
		want := teg.MaxFlow(g)
		for _, engine := range []Engine{EngineLP, EngineTEG} {
			pre, err := Pre(g, engine)
			if err != nil {
				t.Logf("seed %d: Pre(%s): %v", seed, engine, err)
				return false
			}
			if !feq(pre.Flow, want) {
				t.Logf("seed %d: Pre(%s)=%g, want %g", seed, engine, pre.Flow, want)
				return false
			}
			ps, err := PreSim(g, engine)
			if err != nil {
				t.Logf("seed %d: PreSim(%s): %v", seed, engine, err)
				return false
			}
			if !feq(ps.Flow, want) {
				t.Logf("seed %d: PreSim(%s)=%g, want %g\n%s", seed, engine, ps.Flow, want, g)
				return false
			}
			if pre.Class != ps.Class {
				t.Logf("seed %d: class mismatch Pre=%s PreSim=%s", seed, pre.Class, ps.Class)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyLPSolutionFeasible: the LP optimum respects capacities and
// the temporal buffer constraints when replayed as an event sequence.
func TestPropertyLPSolutionFeasible(t *testing.T) {
	cfg := datagen.DefaultDAGConfig()
	f := func(seed int64) bool {
		g := randGraph(seed, cfg)
		total, byOrd, err := LPTransfers(g)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		buf := make([]float64, g.NumV)
		buf[g.Source] = math.Inf(1)
		sum := 0.0
		for _, ev := range g.Events() {
			x := byOrd[ev.Ord]
			if x < -ftol || x > ev.Qty+ftol {
				t.Logf("seed %d: transfer %g outside [0,%g]", seed, x, ev.Qty)
				return false
			}
			if x > buf[ev.From]+ftol {
				t.Logf("seed %d: transfer %g exceeds buffer %g at v%d", seed, x, buf[ev.From], ev.From)
				return false
			}
			if !math.IsInf(buf[ev.From], 1) {
				buf[ev.From] -= x
			}
			buf[ev.To] += x
			if ev.To == g.Sink {
				sum += x
			}
		}
		if !feq(sum, total) {
			t.Logf("seed %d: replayed sink inflow %g != objective %g", seed, sum, total)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyTEGTransfersFeasible mirrors the LP feasibility check for the
// time-expanded engine.
func TestPropertyTEGTransfersFeasible(t *testing.T) {
	cfg := datagen.DefaultDAGConfig()
	f := func(seed int64) bool {
		g := randGraph(seed, cfg)
		total, byOrd := teg.Transfers(g)
		buf := make([]float64, g.NumV)
		buf[g.Source] = math.Inf(1)
		sum := 0.0
		for _, ev := range g.Events() {
			x := byOrd[ev.Ord]
			if x < -ftol || x > ev.Qty+ftol || x > buf[ev.From]+ftol {
				t.Logf("seed %d: infeasible TEG transfer %g (cap %g, buf %g)", seed, x, ev.Qty, buf[ev.From])
				return false
			}
			if !math.IsInf(buf[ev.From], 1) {
				buf[ev.From] -= x
			}
			buf[ev.To] += x
			if ev.To == g.Sink {
				sum += x
			}
		}
		return feq(sum, total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDuplicateTimestamps stresses the canonical tie-break order:
// all timestamps collide, yet all solvers must still agree.
func TestPropertyDuplicateTimestamps(t *testing.T) {
	cfg := datagen.DefaultDAGConfig()
	cfg.MaxTime = 2 // almost every timestamp collides
	f := func(seed int64) bool {
		g := randGraph(seed, cfg)
		lpFlow, err := MaxFlowLP(g)
		if err != nil {
			return false
		}
		if !feq(lpFlow, teg.MaxFlow(g)) {
			t.Logf("seed %d: tie-break divergence: LP=%g TEG=%g", seed, lpFlow, teg.MaxFlow(g))
			return false
		}
		return Greedy(g) <= lpFlow+ftol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyZeroQuantities: zero-quantity interactions are legal and
// never change the optimum relative to dropping them.
func TestPropertyZeroQuantities(t *testing.T) {
	cfg := datagen.DefaultDAGConfig()
	cfg.ZeroQtyProb = 0.3
	f := func(seed int64) bool {
		g := randGraph(seed, cfg)
		lpFlow, err := MaxFlowLP(g)
		if err != nil {
			return false
		}
		return feq(lpFlow, teg.MaxFlow(g))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyPreprocessOnlyRemoves: Algorithm 1 never adds anything.
func TestPropertyPreprocessOnlyRemoves(t *testing.T) {
	cfg := datagen.DefaultDAGConfig()
	f := func(seed int64) bool {
		g := randGraph(seed, cfg)
		ia, e, v := g.NumInteractions(), g.NumLiveEdges(), g.NumLiveVertices()
		st, err := Preprocess(g)
		if err != nil {
			return false
		}
		return g.NumInteractions() <= ia && g.NumLiveEdges() <= e && g.NumLiveVertices() <= v &&
			g.NumLiveEdges() == e-st.Edges && g.NumLiveVertices() == v-st.Vertices
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestLargerRandomGraphsCrossCheck runs fewer but bigger instances through
// every solver, including the pipelines.
func TestLargerRandomGraphsCrossCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := datagen.DAGConfig{
		MinV: 12, MaxV: 25, EdgeProb: 0.25,
		MaxInteractions: 6, MaxTime: 200, MaxQty: 50,
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		g := datagen.RandomDAG(rng, cfg)
		lpFlow, err := MaxFlowLP(g)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		tegFlow := teg.MaxFlow(g)
		if !feq(lpFlow, tegFlow) {
			t.Fatalf("trial %d: LP=%g TEG=%g", trial, lpFlow, tegFlow)
		}
		ps, err := PreSim(g, EngineLP)
		if err != nil {
			t.Fatalf("trial %d: PreSim: %v", trial, err)
		}
		if !feq(ps.Flow, tegFlow) {
			t.Fatalf("trial %d: PreSim=%g, want %g", trial, ps.Flow, tegFlow)
		}
		if Greedy(g) > tegFlow+ftol {
			t.Fatalf("trial %d: greedy exceeds max", trial)
		}
	}
}
