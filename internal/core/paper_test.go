package core

import (
	"math"
	"testing"

	"flownet/internal/teg"
	"flownet/internal/tin"
)

// figure3 builds the paper's Figure 3 running example:
// s=0, y=1, z=2, t=3.
func figure3() *tin.Graph {
	g := tin.NewGraph(4, 0, 3)
	g.AddSeq(g.AddEdge(0, 1), [2]float64{1, 5}) // s->y
	g.AddSeq(g.AddEdge(0, 2), [2]float64{2, 3}) // s->z
	g.AddSeq(g.AddEdge(1, 2), [2]float64{3, 5}) // y->z
	g.AddSeq(g.AddEdge(1, 3), [2]float64{4, 4}) // y->t
	g.AddSeq(g.AddEdge(2, 3), [2]float64{5, 1}) // z->t
	g.Finalize()
	return g
}

// figure1a builds the toy network of Figure 1(a):
// s=0, x=1, y=2, z=3, t=4.
func figure1a() *tin.Graph {
	g := tin.NewGraph(5, 0, 4)
	g.AddSeq(g.AddEdge(0, 1), [2]float64{1, 3}, [2]float64{7, 5})  // s->x
	g.AddSeq(g.AddEdge(1, 3), [2]float64{5, 5})                    // x->z
	g.AddSeq(g.AddEdge(0, 2), [2]float64{2, 6})                    // s->y
	g.AddSeq(g.AddEdge(2, 3), [2]float64{8, 5})                    // y->z
	g.AddSeq(g.AddEdge(2, 4), [2]float64{9, 4})                    // y->t
	g.AddSeq(g.AddEdge(3, 4), [2]float64{2, 3}, [2]float64{10, 1}) // z->t
	g.Finalize()
	return g
}

// figure5a builds the chain DAG of Figure 5(a):
// s=0, x=1, y=2, t=3.
func figure5a() *tin.Graph {
	g := tin.NewGraph(4, 0, 3)
	g.AddSeq(g.AddEdge(0, 1), [2]float64{1, 5}, [2]float64{4, 3}, [2]float64{5, 2})
	g.AddSeq(g.AddEdge(1, 2), [2]float64{3, 3}, [2]float64{7, 4})
	g.AddSeq(g.AddEdge(2, 3), [2]float64{6, 3}, [2]float64{8, 6})
	g.Finalize()
	return g
}

func TestPaperTable2GreedyTrace(t *testing.T) {
	g := figure3()
	rows := GreedyTrace(g)
	// Table 2 buffer columns: Bs, By, Bz, Bt after each interaction.
	want := [][]float64{
		{5, 0, 0},
		{5, 3, 0},
		{0, 8, 0},
		{0, 8, 0},
		{0, 7, 1},
	}
	if len(rows) != len(want) {
		t.Fatalf("got %d rows, want %d", len(rows), len(want))
	}
	for i, w := range want {
		if !math.IsInf(rows[i][0], 1) {
			t.Errorf("row %d: Bs=%g, want +inf", i, rows[i][0])
		}
		for j, q := range w {
			if rows[i][j+1] != q {
				t.Errorf("row %d: B%d=%g, want %g", i, j+1, rows[i][j+1], q)
			}
		}
	}
	if f := Greedy(g); f != 1 {
		t.Errorf("greedy flow=%g, want 1 (Table 2)", f)
	}
}

func TestPaperTable3MaximumFlow(t *testing.T) {
	g := figure3()
	// Table 3 shows the optimum: 5 units reach the sink.
	lpFlow, err := MaxFlowLP(g)
	if err != nil {
		t.Fatalf("MaxFlowLP: %v", err)
	}
	if math.Abs(lpFlow-5) > 1e-9 {
		t.Errorf("LP max flow=%g, want 5 (Table 3)", lpFlow)
	}
	if f := teg.MaxFlow(g); math.Abs(f-5) > 1e-9 {
		t.Errorf("TEG max flow=%g, want 5", f)
	}
	// Figure 3's graph has vertex y with two outgoing edges, so greedy is
	// not guaranteed (and indeed not) optimal.
	if GreedySoluble(g) {
		t.Errorf("figure 3 graph must not be greedy-soluble")
	}
}

func TestPaperFigure1(t *testing.T) {
	g := figure1a()
	// Greedy: y sends 5 to z at t=8, leaving 1 for (9,4): flow 1+1=2.
	if f := Greedy(g); f != 2 {
		t.Errorf("greedy=%g, want 2", f)
	}
	// Maximum: y reserves for (9,4): 4 via y->t, 1 via z->t = 5.
	f, err := MaxFlowLP(g)
	if err != nil {
		t.Fatalf("MaxFlowLP: %v", err)
	}
	if math.Abs(f-5) > 1e-9 {
		t.Errorf("max flow=%g, want 5", f)
	}

	// The intro's preprocessing example: interaction (2,$3) on (z,t) is
	// eliminated because every interaction entering z is later.
	h := g.Clone()
	st, err := Preprocess(h)
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	if st.Interactions < 1 {
		t.Errorf("preprocess removed %d interactions, want >= 1", st.Interactions)
	}
	zt := h.FindEdge(3, 4)
	if zt < 0 {
		t.Fatalf("edge z->t missing after preprocess")
	}
	for _, ia := range h.Edges[zt].Seq {
		if ia.Time == 2 {
			t.Errorf("interaction (2,3) on z->t not removed")
		}
	}
	// Preprocessing preserves the maximum flow.
	f2, err := MaxFlowLP(h)
	if err != nil {
		t.Fatalf("MaxFlowLP after preprocess: %v", err)
	}
	if math.Abs(f2-5) > 1e-9 {
		t.Errorf("max flow after preprocess=%g, want 5", f2)
	}

	// The intro's simplification example: chain s->x->z reduces to an edge
	// (s,z); Figure 1(b) shows it carrying (5,$3).
	Simplify(h)
	sz := h.FindEdge(0, 3)
	if sz < 0 {
		t.Fatalf("edge s->z missing after simplify")
	}
	seq := h.Edges[sz].Seq
	if len(seq) != 1 || seq[0].Time != 5 || seq[0].Qty != 3 {
		t.Errorf("s->z sequence %v, want [(5,3)]", seq)
	}
	f3, err := MaxFlowLP(h)
	if err != nil {
		t.Fatalf("MaxFlowLP after simplify: %v", err)
	}
	if math.Abs(f3-5) > 1e-9 {
		t.Errorf("max flow after simplify=%g, want 5", f3)
	}
}

func TestPaperFigure5aChain(t *testing.T) {
	g := figure5a()
	if !IsChain(g) {
		t.Fatalf("figure 5(a) graph should be a chain")
	}
	if !GreedySoluble(g) {
		t.Fatalf("chains are greedy-soluble (Lemma 1)")
	}
	flow, arrivals := GreedyArrivals(g)
	if flow != 7 {
		t.Errorf("greedy flow=%g, want 7", flow)
	}
	// The paper reduces this chain to edge (s,t) with {(6,3),(8,4)}.
	if len(arrivals) != 2 {
		t.Fatalf("arrivals=%v, want 2 entries", arrivals)
	}
	if arrivals[0].Time != 6 || arrivals[0].Qty != 3 {
		t.Errorf("first arrival %v, want (6,3)", arrivals[0])
	}
	if arrivals[1].Time != 8 || arrivals[1].Qty != 4 {
		t.Errorf("second arrival %v, want (8,4)", arrivals[1])
	}
	// Greedy equals max flow on chains.
	f, err := MaxFlowLP(g)
	if err != nil {
		t.Fatalf("MaxFlowLP: %v", err)
	}
	if math.Abs(f-7) > 1e-9 {
		t.Errorf("max flow=%g, want 7 (= greedy on a chain)", f)
	}

	// Simplify must perform exactly that reduction.
	h := g.Clone()
	st := Simplify(h)
	if st.ChainsReduced != 1 {
		t.Errorf("chains reduced=%d, want 1", st.ChainsReduced)
	}
	if h.NumLiveVertices() != 2 || h.NumLiveEdges() != 1 {
		t.Errorf("simplified to V=%d E=%d, want 2,1", h.NumLiveVertices(), h.NumLiveEdges())
	}
	est := h.FindEdge(0, 3)
	seq := h.Edges[est].Seq
	if len(seq) != 2 || seq[0].Time != 6 || seq[0].Qty != 3 || seq[1].Time != 8 || seq[1].Qty != 4 {
		t.Errorf("reduced edge sequence %v, want [(6,3) (8,4)]", seq)
	}
}

// figure6G1 builds DAG G1 of Figure 6(a):
// s=0, x=1, y=2, z=3, t=4.
func figure6G1() *tin.Graph {
	g := tin.NewGraph(5, 0, 4)
	g.AddSeq(g.AddEdge(0, 1), [2]float64{5, 3}, [2]float64{8, 3})  // s->x
	g.AddSeq(g.AddEdge(0, 2), [2]float64{9, 7})                    // s->y
	g.AddSeq(g.AddEdge(0, 3), [2]float64{10, 5})                   // s->z
	g.AddSeq(g.AddEdge(1, 2), [2]float64{2, 7}, [2]float64{12, 4}) // x->y
	g.AddSeq(g.AddEdge(1, 3), [2]float64{1, 2}, [2]float64{13, 1}) // x->z
	g.AddSeq(g.AddEdge(2, 4), [2]float64{3, 3}, [2]float64{15, 2}) // y->t
	g.AddSeq(g.AddEdge(3, 4), [2]float64{4, 2}, [2]float64{11, 4}) // z->t
	g.Finalize()
	return g
}

func TestPaperFigure6G1Preprocess(t *testing.T) {
	g := figure6G1()
	before, err := MaxFlowLP(g)
	if err != nil {
		t.Fatalf("MaxFlowLP: %v", err)
	}
	st, err := Preprocess(g)
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	// The paper deletes exactly (2,7) from x->y, (1,2) from x->z, (3,3)
	// from y->t, (4,2) from z->t; no edges or vertices.
	if st.Interactions != 4 || st.Edges != 0 || st.Vertices != 0 {
		t.Errorf("stats=%+v, want 4 interactions, 0 edges, 0 vertices", st)
	}
	checks := []struct {
		from, to tin.VertexID
		want     [][2]float64
	}{
		{1, 2, [][2]float64{{12, 4}}},
		{1, 3, [][2]float64{{13, 1}}},
		{2, 4, [][2]float64{{15, 2}}},
		{3, 4, [][2]float64{{11, 4}}},
		{0, 1, [][2]float64{{5, 3}, {8, 3}}}, // source edges untouched
	}
	for _, c := range checks {
		e := g.FindEdge(c.from, c.to)
		if e < 0 {
			t.Fatalf("edge %d->%d missing", c.from, c.to)
		}
		seq := g.Edges[e].Seq
		if len(seq) != len(c.want) {
			t.Errorf("edge %d->%d: seq %v, want %v", c.from, c.to, seq, c.want)
			continue
		}
		for i, w := range c.want {
			if seq[i].Time != w[0] || seq[i].Qty != w[1] {
				t.Errorf("edge %d->%d[%d]: %v, want (%g,%g)", c.from, c.to, i, seq[i], w[0], w[1])
			}
		}
	}
	after, err := MaxFlowLP(g)
	if err != nil {
		t.Fatalf("MaxFlowLP after: %v", err)
	}
	if math.Abs(before-after) > 1e-9 {
		t.Errorf("preprocess changed max flow: %g -> %g", before, after)
	}
}

// figure6G2 builds DAG G2 of Figure 6(c):
// s=0, x=1, y=2, z=3, t=4.
func figure6G2() *tin.Graph {
	g := tin.NewGraph(5, 0, 4)
	g.AddSeq(g.AddEdge(0, 1), [2]float64{5, 3}, [2]float64{8, 3})  // s->x
	g.AddSeq(g.AddEdge(1, 2), [2]float64{3, 4})                    // x->y
	g.AddSeq(g.AddEdge(2, 4), [2]float64{1, 2}, [2]float64{13, 1}) // y->t
	g.AddSeq(g.AddEdge(0, 4), [2]float64{9, 7})                    // s->t
	g.AddSeq(g.AddEdge(0, 3), [2]float64{10, 5})                   // s->z
	g.AddSeq(g.AddEdge(3, 4), [2]float64{4, 2}, [2]float64{11, 4}) // z->t
	g.Finalize()
	return g
}

func TestPaperFigure6G2PreprocessCascades(t *testing.T) {
	g := figure6G2()
	st, err := Preprocess(g)
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	// x's only out-interaction (3,4) precedes its earliest inflow (5,3), so
	// edge (x,y) empties; x loses its outgoing edges and is deleted with
	// s->x; y loses its incoming edges and is deleted with y->t; z keeps
	// (11,4) after deleting (4,2).
	if g.VertexAlive(1) || g.VertexAlive(2) {
		t.Errorf("x and y should be deleted")
	}
	if st.Vertices != 2 {
		t.Errorf("vertices deleted=%d, want 2", st.Vertices)
	}
	if g.NumLiveEdges() != 3 {
		t.Errorf("live edges=%d, want 3 (s->t, s->z, z->t)", g.NumLiveEdges())
	}
	zt := g.FindEdge(3, 4)
	if zt < 0 || len(g.Edges[zt].Seq) != 1 || g.Edges[zt].Seq[0].Time != 11 {
		t.Errorf("z->t should carry only (11,4)")
	}
	// Figure 6(d)'s result is soluble by greedy: the paper re-applies the
	// Lemma 2 check after preprocessing.
	if !GreedySoluble(g) {
		t.Errorf("preprocessed G2 should be greedy-soluble")
	}
	if f := Greedy(g); f != 7+4 {
		t.Errorf("flow=%g, want 11 (7 direct + min(5 in, 4 out) via z)", f)
	}
}

// figure2cInstance builds the pattern instance of Figure 2(c) as a flow
// graph: the cycle u1->u2->u3->u1 with u1 split into source and sink.
// s=0, t=1, u2=2, u3=3.
func figure2cInstance() *tin.Graph {
	g := tin.NewGraph(4, 0, 1)
	g.AddSeq(g.AddEdge(0, 2), [2]float64{2, 5}, [2]float64{4, 3}, [2]float64{8, 1}) // u1->u2
	g.AddSeq(g.AddEdge(2, 3), [2]float64{3, 4}, [2]float64{5, 2})                   // u2->u3
	g.AddSeq(g.AddEdge(3, 1), [2]float64{1, 2}, [2]float64{6, 5})                   // u3->u1
	g.Finalize()
	return g
}

func TestPaperFigure2cInstanceFlow(t *testing.T) {
	g := figure2cInstance()
	// The caption reports flow = $5.
	if f := Greedy(g); f != 5 {
		t.Errorf("greedy=%g, want 5", f)
	}
	f, err := MaxFlowLP(g)
	if err != nil {
		t.Fatalf("MaxFlowLP: %v", err)
	}
	if math.Abs(f-5) > 1e-9 {
		t.Errorf("max flow=%g, want 5", f)
	}
	// Section 4.2.3's example: interaction (1,$2) on the last edge is
	// eliminated because all interactions entering u3 are later.
	h := g.Clone()
	st, err := Preprocess(h)
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	if st.Interactions != 1 {
		t.Errorf("removed %d interactions, want 1", st.Interactions)
	}
	e := h.FindEdge(3, 1)
	if len(h.Edges[e].Seq) != 1 || h.Edges[e].Seq[0].Time != 6 {
		t.Errorf("u3->t should carry only (6,5): %v", h.Edges[e].Seq)
	}
	// Section 5.1: the greedy arrivals into u3 are {(3,$4),(5,$2)}.
	_, arr := GreedyArrivals(chainPrefix(g))
	if len(arr) != 2 || arr[0].Time != 3 || arr[0].Qty != 4 || arr[1].Time != 5 || arr[1].Qty != 2 {
		t.Errorf("arrivals into u3 = %v, want [(3,4) (5,2)]", arr)
	}
}

// chainPrefix builds the two-edge prefix u1->u2->u3 of the Figure 2(c)
// instance as its own flow graph (s=0, u2=1, sink u3=2).
func chainPrefix(*tin.Graph) *tin.Graph {
	g := tin.NewGraph(3, 0, 2)
	g.AddSeq(g.AddEdge(0, 1), [2]float64{2, 5}, [2]float64{4, 3}, [2]float64{8, 1})
	g.AddSeq(g.AddEdge(1, 2), [2]float64{3, 4}, [2]float64{5, 2})
	g.Finalize()
	return g
}

func TestPaperLemma2Example(t *testing.T) {
	// Figure 5(b)-style DAG: source with several outgoing edges, every
	// other vertex with exactly one; greedy computes the maximum flow.
	g := tin.NewGraph(5, 0, 4) // s, a, b, c, t
	g.AddSeq(g.AddEdge(0, 1), [2]float64{1, 5}, [2]float64{6, 2})
	g.AddSeq(g.AddEdge(0, 2), [2]float64{2, 4})
	g.AddSeq(g.AddEdge(0, 3), [2]float64{3, 3})
	g.AddSeq(g.AddEdge(1, 4), [2]float64{4, 6}, [2]float64{7, 3})
	g.AddSeq(g.AddEdge(2, 4), [2]float64{5, 4})
	g.AddSeq(g.AddEdge(3, 4), [2]float64{8, 2})
	g.Finalize()
	if !GreedySoluble(g) {
		t.Fatalf("graph satisfies Lemma 2's condition")
	}
	greedy := Greedy(g)
	max, err := MaxFlowLP(g)
	if err != nil {
		t.Fatalf("MaxFlowLP: %v", err)
	}
	if math.Abs(greedy-max) > 1e-9 {
		t.Errorf("greedy=%g != max=%g on a Lemma 2 graph", greedy, max)
	}
}

func TestSyntheticSourceSink(t *testing.T) {
	// Figure 4: multiple sources/sinks get a synthetic source and sink with
	// infinite-quantity interactions at -inf / +inf.
	// Original: x=2, y=3 sources; z=4, w=5 sinks; synthetic s=0, t=1.
	g := tin.NewGraph(6, 0, 1)
	se1 := g.AddEdge(0, 2)
	se2 := g.AddEdge(0, 3)
	g.AddInteraction(se1, math.Inf(-1), math.Inf(1))
	g.AddInteraction(se2, math.Inf(-1), math.Inf(1))
	g.AddSeq(g.AddEdge(2, 4), [2]float64{1, 5}) // x->z
	g.AddSeq(g.AddEdge(2, 5), [2]float64{2, 3}) // x->w
	g.AddSeq(g.AddEdge(3, 5), [2]float64{5, 1}) // y->w
	te1 := g.AddEdge(4, 1)
	te2 := g.AddEdge(5, 1)
	g.AddInteraction(te1, math.Inf(1), math.Inf(1))
	g.AddInteraction(te2, math.Inf(1), math.Inf(1))
	g.Finalize()
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// All original-source outputs can reach a sink: 5 + 3 + 1 = 9.
	if f := Greedy(g); f != 9 {
		t.Errorf("greedy=%g, want 9", f)
	}
	f, err := MaxFlowLP(g)
	if err != nil {
		t.Fatalf("MaxFlowLP: %v", err)
	}
	if math.Abs(f-9) > 1e-9 {
		t.Errorf("LP max flow=%g, want 9", f)
	}
	if f := teg.MaxFlow(g); math.Abs(f-9) > 1e-9 {
		t.Errorf("TEG max flow=%g, want 9", f)
	}
}
