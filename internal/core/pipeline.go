package core

import (
	"fmt"
	"math"

	"flownet/internal/lp"
	"flownet/internal/teg"
	"flownet/internal/tin"
)

// Engine selects the exact solver applied when the greedy algorithm is not
// guaranteed to find the maximum flow.
type Engine int

const (
	// EngineLP solves the LP formulation with the simplex of internal/lp,
	// as the paper does (it used the lpsolve library).
	EngineLP Engine = iota
	// EngineTEG solves the time-expanded static reduction with Dinic's
	// algorithm; same optimum, different cost profile.
	EngineTEG
)

// String returns the engine name.
func (e Engine) String() string {
	switch e {
	case EngineLP:
		return "lp"
	case EngineTEG:
		return "teg"
	default:
		return fmt.Sprintf("engine(%d)", int(e))
	}
}

// Class is the difficulty class of a subgraph as defined in Section 6.2 of
// the paper.
type Class int

const (
	// ClassA graphs are soluble by the greedy algorithm as-is.
	ClassA Class = iota
	// ClassB graphs become greedy-soluble after preprocessing.
	ClassB
	// ClassC graphs need the exact engine even after preprocessing.
	ClassC
)

// String returns "A", "B" or "C".
func (c Class) String() string { return [...]string{"A", "B", "C"}[c] }

// Result is the outcome of a pipeline run.
type Result struct {
	// Flow is the maximum flow from source to sink.
	Flow float64
	// Class is the difficulty class the pipeline assigned to the input.
	Class Class
	// UsedEngine is true when the exact engine ran (Class C).
	UsedEngine bool
	// SolvedGreedyAfterSimplify is true when simplification alone reduced a
	// Class C graph to a greedy-soluble one (PreSim only).
	SolvedGreedyAfterSimplify bool
	// Pre / Sim describe what preprocessing and simplification removed.
	Pre PreprocessStats
	Sim SimplifyStats
	// LPVariables is the variable count of the final LP (0 if none ran).
	LPVariables int
}

// Pre is the paper's "Pre" method: test greedy solubility (Lemma 2); if it
// fails, preprocess (Algorithm 1) and re-test; only if that also fails run
// the exact engine. The input graph is not modified.
func Pre(g *tin.Graph, engine Engine) (Result, error) {
	return pipeline(g, engine, false)
}

// PreSim is the paper's complete solution: Pre plus graph simplification
// (Algorithm 2) before the exact engine runs. The input graph is not
// modified.
func PreSim(g *tin.Graph, engine Engine) (Result, error) {
	return pipeline(g, engine, true)
}

func pipeline(g *tin.Graph, engine Engine, simplify bool) (Result, error) {
	var res Result
	if GreedySoluble(g) {
		res.Flow = Greedy(g)
		res.Class = ClassA
		return res, nil
	}
	h := g.Clone()
	pre, err := Preprocess(h)
	if err != nil {
		return res, err
	}
	res.Pre = pre
	res.Class = ClassB
	if ZeroFlow(h) {
		return res, nil
	}
	if GreedySoluble(h) {
		res.Flow = Greedy(h)
		return res, nil
	}
	res.Class = ClassC
	if simplify {
		res.Sim = Simplify(h)
		if ZeroFlow(h) {
			return res, nil
		}
		if GreedySoluble(h) {
			res.Flow = Greedy(h)
			res.SolvedGreedyAfterSimplify = true
			return res, nil
		}
	}
	res.UsedEngine = true
	switch engine {
	case EngineTEG:
		res.Flow = teg.MaxFlow(h)
	default:
		m := BuildLP(h)
		res.LPVariables = m.Prob.NumVars()
		sol, err := lp.Solve(m.Prob)
		switch {
		case err == lp.ErrUnbounded:
			res.Flow = math.Inf(1)
		case err != nil:
			return res, fmt.Errorf("core: %s engine: %w", engine, err)
		default:
			res.Flow = sol.Objective + m.ConstFlow
		}
	}
	return res, nil
}

// MaxFlow computes the temporal maximum flow of g with the full PreSim
// pipeline and the LP engine — the paper's recommended configuration.
func MaxFlow(g *tin.Graph) (float64, error) {
	res, err := PreSim(g, EngineLP)
	return res.Flow, err
}
