package core

import (
	"math"
	"testing"

	"flownet/internal/teg"
	"flownet/internal/tin"
)

// fuzzGraph decodes fuzz bytes into a small random acyclic flow instance:
// byte 0 picks the vertex count (3..8), then every 4-byte chunk encodes one
// interaction on an edge that always points from a lower to a higher vertex
// id — so the graph is a DAG by construction, vertex 0 is a pure source and
// the last vertex a pure sink. Inputs whose graph fails Validate (isolated
// vertices break the paper's connectivity precondition) are skipped.
func fuzzGraph(data []byte) (*tin.Graph, bool) {
	if len(data) < 5 {
		return nil, false
	}
	numV := 3 + int(data[0]%6)
	rest := data[1:]
	if len(rest) > 4*64 { // cap the interaction count; fuzzing wants many small inputs
		rest = rest[:4*64]
	}
	g := tin.NewGraph(numV, 0, tin.VertexID(numV-1))
	type pair struct{ from, to tin.VertexID }
	edges := make(map[pair]tin.EdgeID)
	added := 0
	for ; len(rest) >= 4; rest = rest[4:] {
		from := int(rest[0]) % (numV - 1)
		to := from + 1 + int(rest[1])%(numV-1-from)
		p := pair{tin.VertexID(from), tin.VertexID(to)}
		e, ok := edges[p]
		if !ok {
			e = g.AddEdge(p.from, p.to)
			edges[p] = e
		}
		g.AddInteraction(e, float64(rest[2]), float64(rest[3]%32))
		added++
	}
	if added == 0 {
		return nil, false
	}
	g.Finalize()
	if g.Validate() != nil {
		return nil, false
	}
	return g, true
}

// FuzzFlowEquivalence cross-checks the flow engines on random acyclic TINs:
// the PreSim pipeline (LP engine), the Pre pipeline (TEG engine) and the
// raw time-expanded reduction must agree on the maximum flow, the greedy
// scan must never exceed it, and on greedy-soluble graphs (Lemma 2) the
// greedy result must BE the maximum flow.
func FuzzFlowEquivalence(f *testing.F) {
	f.Add([]byte{0, 0, 0, 1, 5, 1, 1, 2, 4})             // 3 vertices, 0->1->2 chain
	f.Add([]byte{2, 0, 1, 1, 9, 0, 0, 2, 9})             // diamond-ish, ties
	f.Add([]byte{5, 1, 2, 3, 4, 0, 0, 200, 31})          // late high-capacity edge
	f.Add([]byte{3, 0, 0, 7, 0, 1, 1, 3, 3})             // zero-quantity interaction
	f.Add([]byte{0, 0, 0, 5, 5, 0, 0, 1, 5, 1, 0, 9, 5}) // parallel sequence on one edge
	f.Fuzz(func(t *testing.T, data []byte) {
		g, ok := fuzzGraph(data)
		if !ok {
			return
		}
		presim, err := PreSim(g, EngineLP)
		if err != nil {
			t.Fatalf("PreSim(LP) failed on valid input: %v\n%s", err, g)
		}
		pre, err := Pre(g, EngineTEG)
		if err != nil {
			t.Fatalf("Pre(TEG) failed on valid input: %v\n%s", err, g)
		}
		tegFlow := teg.MaxFlow(g)
		tol := 1e-6 * (1 + math.Abs(tegFlow))
		if math.Abs(presim.Flow-tegFlow) > tol {
			t.Fatalf("PreSim(LP) flow %v != TEG flow %v\n%s", presim.Flow, tegFlow, g)
		}
		if math.Abs(pre.Flow-tegFlow) > tol {
			t.Fatalf("Pre(TEG) flow %v != TEG flow %v\n%s", pre.Flow, tegFlow, g)
		}
		greedy := Greedy(g)
		if greedy > tegFlow+tol {
			t.Fatalf("greedy flow %v exceeds maximum %v\n%s", greedy, tegFlow, g)
		}
		if GreedySoluble(g) && math.Abs(greedy-tegFlow) > tol {
			t.Fatalf("greedy-soluble graph: greedy %v != maximum %v\n%s", greedy, tegFlow, g)
		}
	})
}
