package core

import (
	"math"

	"flownet/internal/tin"
)

// SimplifyStats reports what Algorithm 2 did.
type SimplifyStats struct {
	ChainsReduced int // chains replaced by single edges
	EdgesMerged   int // parallel (source, v) edges merged away
	Interactions  int // net interactions removed
	Vertices      int // inner chain vertices removed
}

// Simplify applies the paper's Algorithm 2 (graph simplification) to g in
// place: every chain s→v1→…→vk that originates at the source (each inner
// vertex with live in- and out-degree exactly one) is replaced by a single
// edge (s, vk) whose interactions are the greedy arrivals at vk along the
// chain (Lemma 3: reserving quantity at the source or at inner chain
// vertices cannot increase the maximum flow, so the arrival sequence is an
// exact summary). If an edge (s, vk) already exists, the two interaction
// sequences are merged (Figure 7(c)); merging may create a new chain, so
// the procedure iterates until no chain remains.
//
// Simplify preserves the maximum flow of the graph. It is typically run
// after Preprocess, as in the PreSim pipeline.
func Simplify(g *tin.Graph) SimplifyStats {
	var st SimplifyStats
	for {
		chain := findSourceChain(g)
		if chain == nil {
			break
		}
		st.ChainsReduced++
		before := g.NumInteractions()

		arrivals := chainArrivals(g, chain)
		last := g.Edges[chain[len(chain)-1]].To // vk

		// Remove the chain's edges and inner vertices.
		for i, e := range chain {
			if i > 0 {
				v := g.Edges[e].From
				g.DeleteVertex(v) // also deletes the chain edges incident to v
				st.Vertices++
			}
		}
		// The first edge (s, v1) dies with v1's deletion unless the chain
		// has a single inner vertex; delete defensively (idempotent).
		g.DeleteEdge(chain[0])

		// Attach the arrival sequence as edge (s, last), merging with an
		// existing parallel edge if there is one. An empty arrival sequence
		// still yields an edge, keeping the structure explicit; downstream
		// preprocessing treats it as carrying nothing.
		if ex := g.FindEdge(g.Source, last); ex >= 0 {
			g.SetSeq(ex, mergeByOrd(g.Edges[ex].Seq, arrivals))
			st.EdgesMerged++
		} else {
			g.AddReducedEdge(g.Source, last, arrivals)
		}
		st.Interactions += before - g.NumInteractions()
	}
	return st
}

// findSourceChain returns the edge ids of a maximal chain s→v1→…→vk with
// k ≥ 2 edges whose inner vertices all have live in-degree and out-degree
// exactly one, or nil if no such chain exists. Deterministic: the source's
// live out-edges are scanned in id order.
func findSourceChain(g *tin.Graph) []tin.EdgeID {
	var chain []tin.EdgeID
	g.OutEdges(g.Source, func(first tin.EdgeID) {
		if chain != nil {
			return
		}
		v := g.Edges[first].To
		if v == g.Sink || g.InDegree(v) != 1 || g.OutDegree(v) != 1 {
			return
		}
		c := []tin.EdgeID{first}
		for v != g.Sink && v != g.Source && g.InDegree(v) == 1 && g.OutDegree(v) == 1 {
			e := g.FirstOutEdge(v)
			c = append(c, e)
			v = g.Edges[e].To
			if len(c) > g.NumLiveEdges() {
				return // cycle guard; cannot happen on validated DAGs
			}
		}
		if v == g.Source {
			return // cycle back to source; not a reducible chain
		}
		chain = c
	})
	return chain
}

// chainEvent is an interaction with its endpoints, used by chainArrivals.
type chainEvent struct {
	ia       tin.Interaction
	from, to tin.VertexID
}

// chainArrivals runs the greedy algorithm restricted to the chain's edges
// and returns the positive arrivals at the chain's final vertex, with Ord
// and Time inherited from the triggering interactions (Lemma 3).
func chainArrivals(g *tin.Graph, chain []tin.EdgeID) []tin.Interaction {
	var events []chainEvent
	for _, e := range chain {
		ed := &g.Edges[e]
		for _, ia := range ed.Seq {
			events = append(events, chainEvent{ia, ed.From, ed.To})
		}
	}
	// Seq slices are Ord-sorted; merging k of them by a global sort keeps
	// the code simple (chains are short).
	sortEvents(events)
	buf := make(map[tin.VertexID]float64)
	buf[g.Source] = math.Inf(1)
	last := g.Edges[chain[len(chain)-1]].To
	var arrivals []tin.Interaction
	for _, e := range events {
		q := math.Min(e.ia.Qty, buf[e.from])
		if q <= 0 {
			continue
		}
		if !math.IsInf(buf[e.from], 1) {
			buf[e.from] -= q
		}
		buf[e.to] += q
		if e.to == last {
			arrivals = append(arrivals, tin.Interaction{Time: e.ia.Time, Qty: q, Ord: e.ia.Ord})
		}
	}
	return arrivals
}

func sortEvents(events []chainEvent) {
	// Insertion sort on Ord: event lists here are concatenations of a few
	// already-sorted runs, where insertion sort is near linear.
	for i := 1; i < len(events); i++ {
		for j := i; j > 0 && events[j].ia.Ord < events[j-1].ia.Ord; j-- {
			events[j], events[j-1] = events[j-1], events[j]
		}
	}
}

// mergeByOrd merges two Ord-sorted interaction sequences into one.
func mergeByOrd(a, b []tin.Interaction) []tin.Interaction {
	out := make([]tin.Interaction, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].Ord <= b[j].Ord {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
