package core

import (
	"math"
	"testing"

	"flownet/internal/tin"
)

func TestPipelineClassA(t *testing.T) {
	// Chain: soluble by greedy directly.
	g := tin.NewGraph(3, 0, 2)
	g.AddSeq(g.AddEdge(0, 1), [2]float64{1, 5})
	g.AddSeq(g.AddEdge(1, 2), [2]float64{2, 3})
	g.Finalize()
	for _, run := range []struct {
		name string
		fn   func(*tin.Graph, Engine) (Result, error)
	}{{"Pre", Pre}, {"PreSim", PreSim}} {
		res, err := run.fn(g, EngineLP)
		if err != nil {
			t.Fatalf("%s: %v", run.name, err)
		}
		if res.Class != ClassA {
			t.Errorf("%s: class %s, want A", run.name, res.Class)
		}
		if res.Flow != 3 {
			t.Errorf("%s: flow %g, want 3", run.name, res.Flow)
		}
		if res.UsedEngine {
			t.Errorf("%s: engine should not run for class A", run.name)
		}
	}
}

func TestPipelineClassB(t *testing.T) {
	// y has two outgoing edges (not Lemma-2 soluble), but one of them
	// carries only an interaction preceding all of y's inflows, so
	// preprocessing empties and removes it, leaving a soluble graph.
	g := tin.NewGraph(4, 0, 3)                  // s, y, z, t
	g.AddSeq(g.AddEdge(0, 1), [2]float64{5, 4}) // s->y
	g.AddSeq(g.AddEdge(1, 2), [2]float64{1, 9}) // y->z, too early: removed
	g.AddSeq(g.AddEdge(1, 3), [2]float64{7, 4}) // y->t
	g.AddSeq(g.AddEdge(2, 3), [2]float64{2, 5}) // z->t, dies with z
	g.Finalize()
	if GreedySoluble(g) {
		t.Fatalf("test graph should not be class A")
	}
	res, err := Pre(g, EngineLP)
	if err != nil {
		t.Fatalf("Pre: %v", err)
	}
	if res.Class != ClassB {
		t.Errorf("class %s, want B", res.Class)
	}
	if res.Flow != 4 {
		t.Errorf("flow %g, want 4", res.Flow)
	}
	if res.UsedEngine {
		t.Errorf("engine should not run for class B")
	}
	if res.Pre.Edges == 0 || res.Pre.Vertices == 0 {
		t.Errorf("expected edge and vertex deletions: %+v", res.Pre)
	}
}

func TestPipelineClassC(t *testing.T) {
	g := figure3() // needs reservation: class C
	res, err := Pre(g, EngineLP)
	if err != nil {
		t.Fatalf("Pre: %v", err)
	}
	if res.Class != ClassC || !res.UsedEngine {
		t.Errorf("class %s used=%v, want C with engine", res.Class, res.UsedEngine)
	}
	if math.Abs(res.Flow-5) > 1e-9 {
		t.Errorf("flow %g, want 5", res.Flow)
	}
	if res.LPVariables == 0 {
		t.Errorf("LP variable count not reported")
	}

	resT, err := Pre(g, EngineTEG)
	if err != nil {
		t.Fatalf("Pre TEG: %v", err)
	}
	if math.Abs(resT.Flow-5) > 1e-9 {
		t.Errorf("TEG flow %g, want 5", resT.Flow)
	}
	if resT.LPVariables != 0 {
		t.Errorf("TEG engine should not report LP variables")
	}
}

func TestPipelineZeroFlowAfterPreprocess(t *testing.T) {
	// All of v's out-interactions precede its inflow; v and everything
	// upstream collapses, leaving no path to the sink. Another inner
	// vertex keeps two outgoing edges so the graph is not class A.
	g := tin.NewGraph(5, 0, 4)                  // s, v, a, b, t
	g.AddSeq(g.AddEdge(0, 1), [2]float64{5, 2}) // s->v
	g.AddSeq(g.AddEdge(1, 4), [2]float64{1, 9}) // v->t (too early)
	g.AddSeq(g.AddEdge(0, 2), [2]float64{2, 3}) // s->a
	g.AddSeq(g.AddEdge(2, 3), [2]float64{1, 1}) // a->b (too early)
	g.AddSeq(g.AddEdge(2, 4), [2]float64{1, 2}) // a->t (too early)
	g.AddSeq(g.AddEdge(3, 4), [2]float64{9, 9}) // b->t
	g.Finalize()
	res, err := Pre(g, EngineLP)
	if err != nil {
		t.Fatalf("Pre: %v", err)
	}
	if res.Flow != 0 {
		t.Errorf("flow %g, want 0", res.Flow)
	}
	if res.Class != ClassB {
		t.Errorf("class %s, want B (trivially solved after preprocessing)", res.Class)
	}
}

func TestPipelineCyclicInputError(t *testing.T) {
	g := tin.NewGraph(4, 0, 3)
	g.AddSeq(g.AddEdge(0, 1), [2]float64{1, 5})
	g.AddSeq(g.AddEdge(1, 2), [2]float64{2, 5})
	g.AddSeq(g.AddEdge(2, 1), [2]float64{3, 5})
	g.AddSeq(g.AddEdge(1, 3), [2]float64{4, 5})
	g.AddSeq(g.AddEdge(2, 3), [2]float64{5, 5})
	g.Finalize()
	if _, err := Pre(g, EngineLP); err == nil {
		t.Errorf("Pre accepted a cyclic graph")
	}
	if _, err := PreSim(g, EngineLP); err == nil {
		t.Errorf("PreSim accepted a cyclic graph")
	}
}

func TestPipelineDoesNotMutateInput(t *testing.T) {
	g := figure1a()
	ia, e, v := g.NumInteractions(), g.NumLiveEdges(), g.NumLiveVertices()
	if _, err := PreSim(g, EngineLP); err != nil {
		t.Fatalf("PreSim: %v", err)
	}
	if g.NumInteractions() != ia || g.NumLiveEdges() != e || g.NumLiveVertices() != v {
		t.Errorf("PreSim mutated its input")
	}
}

func TestMaxFlowFacade(t *testing.T) {
	f, err := MaxFlow(figure3())
	if err != nil {
		t.Fatalf("MaxFlow: %v", err)
	}
	if math.Abs(f-5) > 1e-9 {
		t.Errorf("MaxFlow=%g, want 5", f)
	}
}

func TestEngineAndClassStrings(t *testing.T) {
	if EngineLP.String() != "lp" || EngineTEG.String() != "teg" {
		t.Errorf("engine strings wrong")
	}
	if Engine(9).String() == "" {
		t.Errorf("unknown engine should still render")
	}
	if ClassA.String() != "A" || ClassB.String() != "B" || ClassC.String() != "C" {
		t.Errorf("class strings wrong")
	}
}

func TestSimplifyMergesParallelSourceEdges(t *testing.T) {
	// Chain s->a->z plus existing edge s->z (Figure 7(c)'s merge): after
	// reduction the two (s,z) edges must merge into one sequence ordered
	// canonically.
	g := tin.NewGraph(5, 0, 4)                                     // s, a, z, w, t
	g.AddSeq(g.AddEdge(0, 1), [2]float64{1, 2}, [2]float64{4, 3})  // s->a
	g.AddSeq(g.AddEdge(1, 2), [2]float64{3, 2}, [2]float64{7, 1})  // a->z
	g.AddSeq(g.AddEdge(0, 2), [2]float64{2, 5}, [2]float64{11, 2}) // s->z (parallel target)
	g.AddSeq(g.AddEdge(2, 3), [2]float64{8, 6})                    // z->w
	g.AddSeq(g.AddEdge(2, 4), [2]float64{9, 1})                    // z->t
	g.AddSeq(g.AddEdge(3, 4), [2]float64{15, 7})                   // w->t
	g.Finalize()

	before := mustMax(t, g)
	st := Simplify(g)
	if st.ChainsReduced == 0 || st.EdgesMerged == 0 {
		t.Fatalf("expected a chain reduction with a merge: %+v", st)
	}
	sz := g.FindEdge(0, 2)
	if sz < 0 {
		t.Fatalf("merged edge s->z missing")
	}
	seq := g.Edges[sz].Seq
	// Chain arrivals: (3,2) [a has 2 at t=3] and (7,1) [a has 3 left, cap 1]
	// merged with existing (2,5),(11,2): canonical order 2,3,7,11.
	wantTimes := []float64{2, 3, 7, 11}
	wantQtys := []float64{5, 2, 1, 2}
	if len(seq) != 4 {
		t.Fatalf("merged sequence %v, want 4 interactions", seq)
	}
	for i := range seq {
		if seq[i].Time != wantTimes[i] || seq[i].Qty != wantQtys[i] {
			t.Errorf("merged[%d]=%v, want (%g,%g)", i, seq[i], wantTimes[i], wantQtys[i])
		}
	}
	for i := 1; i < len(seq); i++ {
		if seq[i-1].Ord >= seq[i].Ord {
			t.Errorf("merged sequence not in canonical order")
		}
	}
	if after := mustMax(t, g); math.Abs(before-after) > 1e-9 {
		t.Errorf("simplify changed flow %g -> %g", before, after)
	}
}

func TestSimplifyIterates(t *testing.T) {
	// s->a->b->z where z also has a second in-edge from s; after reducing
	// the chain and merging, z becomes an inner vertex of a new chain
	// s->z->t, which must also reduce, collapsing the graph to one edge.
	g := tin.NewGraph(5, 0, 4) // s,a,b,z,t
	g.AddSeq(g.AddEdge(0, 1), [2]float64{1, 4})
	g.AddSeq(g.AddEdge(1, 2), [2]float64{2, 3})
	g.AddSeq(g.AddEdge(2, 3), [2]float64{3, 2})
	g.AddSeq(g.AddEdge(0, 3), [2]float64{4, 1}) // s->z
	g.AddSeq(g.AddEdge(3, 4), [2]float64{5, 9}) // z->t
	g.Finalize()
	before := mustMax(t, g)
	st := Simplify(g)
	if st.ChainsReduced < 2 {
		t.Errorf("chains reduced = %d, want >= 2", st.ChainsReduced)
	}
	if g.NumLiveVertices() != 2 || g.NumLiveEdges() != 1 {
		t.Errorf("V=%d E=%d after full simplification, want 2,1", g.NumLiveVertices(), g.NumLiveEdges())
	}
	if after := mustMax(t, g); math.Abs(before-after) > 1e-9 {
		t.Errorf("flow changed %g -> %g", before, after)
	}
}

func TestSimplifyReducesLPVariableCount(t *testing.T) {
	// Section 4.2.4's selling point: the reduced graph has fewer LP
	// variables.
	g := figure1a()
	varsBefore := BuildLP(g).Prob.NumVars()
	h := g.Clone()
	if _, err := Preprocess(h); err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	Simplify(h)
	varsAfter := BuildLP(h).Prob.NumVars()
	if varsAfter >= varsBefore {
		t.Errorf("simplify did not reduce LP size: %d -> %d", varsBefore, varsAfter)
	}
}

func TestGreedyEmptyGraph(t *testing.T) {
	g := tin.NewGraph(2, 0, 1)
	g.AddEdge(0, 1)
	g.Finalize()
	if f := Greedy(g); f != 0 {
		t.Errorf("greedy on empty sequence = %g, want 0", f)
	}
	f, err := MaxFlowLP(g)
	if err != nil || f != 0 {
		t.Errorf("LP on empty sequence = %g, %v", f, err)
	}
}

func TestIsChainNegativeCases(t *testing.T) {
	g := figure3()
	if IsChain(g) {
		t.Errorf("figure 3 graph is not a chain")
	}
	// Disconnected extra vertex.
	h := tin.NewGraph(4, 0, 2)
	h.AddSeq(h.AddEdge(0, 1), [2]float64{1, 1})
	h.AddSeq(h.AddEdge(1, 2), [2]float64{2, 1})
	h.AddSeq(h.AddEdge(0, 3), [2]float64{3, 1}) // dead-end branch
	h.Finalize()
	if IsChain(h) {
		t.Errorf("graph with branch is not a chain")
	}
}

func TestZeroFlowConditions(t *testing.T) {
	g := figure3()
	if ZeroFlow(g) {
		t.Errorf("figure 3 graph has flow")
	}
	h := g.Clone()
	h.DeleteVertex(1)
	h.DeleteVertex(2)
	if !ZeroFlow(h) {
		t.Errorf("graph with no source out-edges should be zero-flow")
	}
}

func mustMax(t *testing.T, g *tin.Graph) float64 {
	t.Helper()
	f, err := MaxFlowLP(g)
	if err != nil {
		t.Fatalf("MaxFlowLP: %v", err)
	}
	return f
}
