package core

import (
	"context"
	"errors"
	"testing"

	"flownet/internal/tin"
)

// TestBatchSeedsContextCancelled is the regression test for request-scoped
// cancellation: once the context is done, BatchSeedsContext must stop
// scheduling seeds and report the context's error instead of grinding
// through the whole list. (The server's POST /flow/batch passes the request
// context here, so a disconnected client aborts the remaining work.)
func TestBatchSeedsContextCancelled(t *testing.T) {
	n, seeds, _ := batchTestGraphs(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		results, err := BatchSeedsContext(ctx, n, seeds, tin.DefaultExtractOptions(), EngineLP, workers)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if len(results) != len(seeds) {
			t.Fatalf("workers=%d: %d result slots, want %d", workers, len(results), len(seeds))
		}
		for i, r := range results {
			if r.Ok {
				t.Fatalf("workers=%d: seed %d was solved after cancellation", workers, seeds[i])
			}
		}
	}
}

// TestBatchSeedsContextBackground checks that the context-aware entry point
// with a live context matches BatchSeeds exactly.
func TestBatchSeedsContextBackground(t *testing.T) {
	n, seeds, _ := batchTestGraphs(t)
	want, err := BatchSeeds(n, seeds, tin.DefaultExtractOptions(), EngineLP, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := BatchSeedsContext(context.Background(), n, seeds, tin.DefaultExtractOptions(), EngineLP, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("seed %d: %+v, want %+v", seeds[i], got[i], want[i])
		}
	}
}
