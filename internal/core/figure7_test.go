package core

import (
	"math"
	"testing"

	"flownet/internal/teg"
	"flownet/internal/tin"
)

// figure7 reconstructs the simplification walkthrough of the paper's
// Figure 7 (the figure text is garbled in the available source, but the
// shown arrival sequences pin the graph down):
//
//	s→y (1,2),(4,3),(5,2); y→z (3,3),(7,1)      — first source chain
//	s→x (9,2),(12,5);      x→w (10,3),(14,4)    — second source chain
//	s→z (2,5),(11,2)                            — pre-existing parallel edge
//	z→w (6,3),(8,6);  w→t (15,7)
//	s→u (13,5);       u→t (16,6)
//
// Vertices: s=0, y=1, z=2, x=3, w=4, u=5, t=6.
func figure7() *tin.Graph {
	g := tin.NewGraph(7, 0, 6)
	g.AddSeq(g.AddEdge(0, 1), [2]float64{1, 2}, [2]float64{4, 3}, [2]float64{5, 2})
	g.AddSeq(g.AddEdge(1, 2), [2]float64{3, 3}, [2]float64{7, 1})
	g.AddSeq(g.AddEdge(0, 3), [2]float64{9, 2}, [2]float64{12, 5})
	g.AddSeq(g.AddEdge(3, 4), [2]float64{10, 3}, [2]float64{14, 4})
	g.AddSeq(g.AddEdge(0, 2), [2]float64{2, 5}, [2]float64{11, 2})
	g.AddSeq(g.AddEdge(2, 4), [2]float64{6, 3}, [2]float64{8, 6})
	g.AddSeq(g.AddEdge(4, 6), [2]float64{15, 7})
	g.AddSeq(g.AddEdge(0, 5), [2]float64{13, 5})
	g.AddSeq(g.AddEdge(5, 6), [2]float64{16, 6})
	g.Finalize()
	return g
}

func TestPaperFigure7Simplification(t *testing.T) {
	g := figure7()
	before, err := MaxFlowLP(g)
	if err != nil {
		t.Fatalf("MaxFlowLP: %v", err)
	}
	tegBefore := teg.MaxFlow(g)
	if math.Abs(before-tegBefore) > 1e-9 {
		t.Fatalf("LP %g != TEG %g on figure 7 graph", before, tegBefore)
	}

	Simplify(g)

	// The paper's figure stops at the state of Figure 7(d); our Simplify
	// iterates to the fixpoint, where the graph — every vertex of which
	// lies on some source chain after the 7(d) state — legally collapses
	// to a single edge (s,t): the reduced s→w edge (6,3),(8,5),(10,2),(14,4)
	// holds 14 units, of which w→t (15,7) forwards 7, and the s→u→t chain
	// contributes (16,5).
	if g.NumLiveVertices() != 2 || g.NumLiveEdges() != 1 {
		t.Fatalf("expected full collapse to one edge, got:\n%s", g)
	}
	st := g.FindEdge(0, 6)
	want := [][2]float64{{15, 7}, {16, 5}}
	seq := g.Edges[st].Seq
	if len(seq) != len(want) {
		t.Fatalf("s->t sequence %v, want %v", seq, want)
	}
	for i, w := range want {
		if seq[i].Time != w[0] || seq[i].Qty != w[1] {
			t.Errorf("s->t[%d] = %v, want (%g,%g)", i, seq[i], w[0], w[1])
		}
	}

	// Flow is preserved through the full collapse.
	after, err := MaxFlowLP(g)
	if err != nil {
		t.Fatalf("MaxFlowLP after: %v", err)
	}
	if math.Abs(after-before) > 1e-9 {
		t.Errorf("simplification changed flow %g -> %g", before, after)
	}
	if math.Abs(after-12) > 1e-9 {
		t.Errorf("figure 7 max flow = %g, want 12", after)
	}

	// The paper reports the LP shrinking from 9 variables to 3. Our
	// reconstruction of the garbled figure has 8 non-source interactions
	// (off by one somewhere in the unrecoverable part), and the full
	// fixpoint leaves 0 (no interaction originates at a non-source vertex).
	varsBefore := BuildLP(figure7()).Prob.NumVars()
	varsAfter := BuildLP(g).Prob.NumVars()
	if varsBefore != 8 {
		t.Errorf("initial LP variables = %d, want 8 (cf. 9 in the paper's original)", varsBefore)
	}
	if varsAfter != 0 {
		t.Errorf("reduced LP variables = %d, want 0", varsAfter)
	}
}

func TestPaperFigure7IntermediateState(t *testing.T) {
	// Figure 7(c)/(d)'s intermediate sequences, pinned by truncating the
	// graph at w (making w the sink stops the cascade there): after
	// reducing s→y→z, merging with the parallel (s,z), and reducing the
	// resulting chain s→z→w plus the chain s→x→w, the merged edge (s,w)
	// carries exactly (6,3),(8,5),(10,2),(14,4) — the sequence shown in
	// Figure 7(d).
	g := tin.NewGraph(5, 0, 4) // s=0, y=1, z=2, x=3, w=4
	g.AddSeq(g.AddEdge(0, 1), [2]float64{1, 2}, [2]float64{4, 3}, [2]float64{5, 2})
	g.AddSeq(g.AddEdge(1, 2), [2]float64{3, 3}, [2]float64{7, 1})
	g.AddSeq(g.AddEdge(0, 3), [2]float64{9, 2}, [2]float64{12, 5})
	g.AddSeq(g.AddEdge(3, 4), [2]float64{10, 3}, [2]float64{14, 4})
	g.AddSeq(g.AddEdge(0, 2), [2]float64{2, 5}, [2]float64{11, 2})
	g.AddSeq(g.AddEdge(2, 4), [2]float64{6, 3}, [2]float64{8, 6})
	g.Finalize()
	before, err := MaxFlowLP(g)
	if err != nil {
		t.Fatalf("MaxFlowLP: %v", err)
	}

	st := Simplify(g)
	if st.ChainsReduced < 3 {
		t.Errorf("chains reduced = %d, want >= 3 (s→y→z, s→x→w, s→z→w)", st.ChainsReduced)
	}
	sw := g.FindEdge(0, 4)
	if sw < 0 {
		t.Fatalf("edge s->w missing:\n%s", g)
	}
	want := [][2]float64{{6, 3}, {8, 5}, {10, 2}, {14, 4}}
	seq := g.Edges[sw].Seq
	if len(seq) != len(want) {
		t.Fatalf("s->w sequence %v, want %v", seq, want)
	}
	for i, w := range want {
		if seq[i].Time != w[0] || seq[i].Qty != w[1] {
			t.Errorf("s->w[%d] = %v, want (%g,%g)", i, seq[i], w[0], w[1])
		}
	}
	after, err := MaxFlowLP(g)
	if err != nil || math.Abs(after-before) > 1e-9 {
		t.Errorf("flow changed %g -> %g (%v)", before, after, err)
	}
}

func TestPaperFigure7ChainArrivalsStepwise(t *testing.T) {
	// The two independent chain reductions shown in Figure 7(b), isolated:
	// chain s→y→z gives {(3,2),(7,1)}; chain s→x→w gives {(10,2),(14,4)}.
	chain1 := tin.NewGraph(3, 0, 2)
	chain1.AddSeq(chain1.AddEdge(0, 1), [2]float64{1, 2}, [2]float64{4, 3}, [2]float64{5, 2})
	chain1.AddSeq(chain1.AddEdge(1, 2), [2]float64{3, 3}, [2]float64{7, 1})
	chain1.Finalize()
	_, arr := GreedyArrivals(chain1)
	if len(arr) != 2 || arr[0].Time != 3 || arr[0].Qty != 2 || arr[1].Time != 7 || arr[1].Qty != 1 {
		t.Errorf("chain s->y->z arrivals %v, want [(3,2) (7,1)]", arr)
	}

	chain2 := tin.NewGraph(3, 0, 2)
	chain2.AddSeq(chain2.AddEdge(0, 1), [2]float64{9, 2}, [2]float64{12, 5})
	chain2.AddSeq(chain2.AddEdge(1, 2), [2]float64{10, 3}, [2]float64{14, 4})
	chain2.Finalize()
	_, arr = GreedyArrivals(chain2)
	if len(arr) != 2 || arr[0].Time != 10 || arr[0].Qty != 2 || arr[1].Time != 14 || arr[1].Qty != 4 {
		t.Errorf("chain s->x->w arrivals %v, want [(10,2) (14,4)]", arr)
	}
}
