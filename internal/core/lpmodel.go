package core

import (
	"math"

	"flownet/internal/lp"
	"flownet/internal/tin"
)

// LPModel is the linear program of Section 4.2.1 built from a graph:
// one variable per interaction not originating at the source (such
// interactions always transfer their full quantity, so they enter the model
// as constants), with
//
//	(1)  0 ≤ x_i ≤ q_i
//	(2)  x_i + Σ_{j≺i, src_j=v} x_j − Σ_{j≺i, dst_j=v} x_j ≤ c_i(v)
//	(3)  maximize Σ_{dst_i = sink} x_i
//
// where v = src_i, ≺ is the canonical interaction order, and c_i(v) is the
// constant inflow v has received from source-adjacent interactions before i.
type LPModel struct {
	Prob *lp.Problem
	// VarOf maps an interaction's canonical Ord to its LP variable index.
	// Interactions leaving the source have no variable.
	VarOf map[int64]int
	// ConstFlow is the flow contributed by interactions going directly from
	// source to sink; it is added to the LP objective value.
	ConstFlow float64
}

// BuildLP constructs the LP model of g. The graph need not be a DAG: the
// formulation only relies on the canonical interaction order.
func BuildLP(g *tin.Graph) *LPModel {
	events := g.Events()

	// First pass: number the variables.
	varOf := make(map[int64]int, len(events))
	nvars := 0
	for _, ev := range events {
		if ev.From != g.Source {
			varOf[ev.Ord] = nvars
			nvars++
		}
	}
	p := lp.NewProblem(nvars)
	m := &LPModel{Prob: p, VarOf: varOf}

	// Per-vertex running ledgers of earlier events.
	outVars := make([][]lp.Entry, g.NumV) // prior outgoing variables (+1)
	inVars := make([][]lp.Entry, g.NumV)  // prior incoming variables (-1)
	inConst := make([]float64, g.NumV)    // prior constant inflow from source

	for _, ev := range events {
		if ev.From == g.Source {
			// Constant transfer of the full quantity.
			if ev.To == g.Sink {
				m.ConstFlow += ev.Qty
			} else {
				inConst[ev.To] += ev.Qty
			}
			continue
		}
		x := varOf[ev.Ord]
		if !math.IsInf(ev.Qty, 1) {
			p.SetBound(x, ev.Qty)
		}
		if ev.To == g.Sink {
			p.SetObjective(x, 1)
		}
		v := ev.From
		// Constraint (2) for this interaction.
		row := make([]lp.Entry, 0, 1+len(outVars[v])+len(inVars[v]))
		row = append(row, lp.Entry{Var: x, Coef: 1})
		row = append(row, outVars[v]...)
		row = append(row, inVars[v]...)
		p.AddConstraint(row, inConst[v])

		// Update ledgers after emitting the constraint: i itself is not
		// "before" i.
		outVars[v] = append(outVars[v], lp.Entry{Var: x, Coef: 1})
		if ev.To != g.Sink {
			inVars[ev.To] = append(inVars[ev.To], lp.Entry{Var: x, Coef: -1})
		}
	}
	return m
}

// MaxFlowLP computes the temporal maximum flow of g by building and solving
// the LP model. An unbounded LP (possible only with synthetic
// infinite-quantity interactions forming an infinite channel) is reported
// as math.Inf(1).
func MaxFlowLP(g *tin.Graph) (float64, error) {
	m := BuildLP(g)
	sol, err := lp.Solve(m.Prob)
	if err == lp.ErrUnbounded {
		return math.Inf(1), nil
	}
	if err != nil {
		return 0, err
	}
	return sol.Objective + m.ConstFlow, nil
}

// LPTransfers solves the LP and returns the total flow together with the
// per-interaction transfer quantities, keyed by canonical Ord (interactions
// leaving the source transfer their full quantity). Used by tests to verify
// feasibility of the optimum.
func LPTransfers(g *tin.Graph) (float64, map[int64]float64, error) {
	m := BuildLP(g)
	sol, err := lp.Solve(m.Prob)
	if err != nil {
		return 0, nil, err
	}
	byOrd := make(map[int64]float64, len(m.VarOf))
	for _, ev := range g.Events() {
		if ev.From == g.Source {
			byOrd[ev.Ord] = ev.Qty
		} else {
			byOrd[ev.Ord] = sol.X[m.VarOf[ev.Ord]]
		}
	}
	return sol.Objective + m.ConstFlow, byOrd, nil
}
