package flownet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"flownet/internal/server"
)

// Wire types of the flownetd HTTP/JSON API (see internal/server and
// cmd/flownetd): the client below decodes exactly what the server encodes.
type (
	// FlowResult is one GET /flow answer.
	FlowResult = server.FlowResult
	// BatchRequest is the POST /flow/batch body.
	BatchRequest = server.BatchRequest
	// BatchResult is the POST /flow/batch answer.
	BatchResult = server.BatchResult
	// SeedFlowResult is one per-seed outcome inside a BatchResult.
	SeedFlowResult = server.SeedFlowResult
	// PatternResult is one GET /patterns answer.
	PatternResult = server.PatternResult
	// NetworkInfo describes one loaded network.
	NetworkInfo = server.NetworkInfo
	// EndpointStats are per-endpoint counters of GET /stats.
	EndpointStats = server.EndpointStats
	// StatsResult is the GET /stats answer.
	StatsResult = server.StatsResult
	// IngestInteraction is one streamed interaction in a POST /ingest body.
	IngestInteraction = server.IngestInteraction
	// IngestRequest is the POST /ingest body.
	IngestRequest = server.IngestRequest
	// IngestResult is the POST /ingest answer.
	IngestResult = server.IngestResult
	// CreateNetworkRequest is the POST /networks body.
	CreateNetworkRequest = server.CreateNetworkRequest
	// CreateNetworkResult is the POST /networks answer.
	CreateNetworkResult = server.CreateNetworkResult
	// StoreStats are the store-wide durability counters inside a
	// StatsResult (WAL appends/fsyncs, snapshots, recoveries).
	StoreStats = server.StoreStats
	// DurabilityInfo is one network's durability state inside a
	// HealthzResult (pending WAL records/bytes, last snapshot time).
	DurabilityInfo = server.DurabilityInfo
	// HealthzResult is the GET /healthz answer.
	HealthzResult = server.HealthzResult
)

// FlowQueryOptions are the optional knobs of Client.Flow and
// Client.SeedFlow. The zero value selects the server defaults.
type FlowQueryOptions struct {
	// Hops bounds the §6.2 returning-path extraction (seed queries only;
	// 0 = server default 3).
	Hops int
	// MaxInteractions caps extracted subgraphs (seed queries only; 0 =
	// server default 10000, negative = no cap).
	MaxInteractions int
	// WindowFrom / WindowTo restrict flow to interactions inside the
	// inclusive time window; nil leaves the corresponding side unbounded.
	WindowFrom, WindowTo *float64
}

// PatternQueryOptions are the optional knobs of Client.Patterns. The zero
// value searches exhaustively with the server's worker pool.
type PatternQueryOptions struct {
	// MaxInstances truncates the search (0 = exhaustive).
	MaxInstances int64
	// MinPaths filters relaxed-pattern instances by bundled path count.
	MinPaths int
	// Workers requests a per-query worker bound (clamped by the server).
	Workers int
}

// DefaultTimeout is the end-to-end timeout of the http.Client that
// NewClient installs. A client without one hangs forever on a stalled
// server or a black-holed connection; callers needing a different bound
// (or none) pass their own client via WithHTTPClient.
const DefaultTimeout = 30 * time.Second

// RetryPolicy configures how the client retries transient failures:
// transport errors and 429 / 503 responses (overload shedding, read-only
// shards pending repair — exactly the statuses flownetd marks with a
// Retry-After hint, which the policy honors). Only idempotent requests are
// retried: every GET, and POST /flow/batch, which computes without writing.
// POST /ingest and POST /networks are never retried — after a transport
// error the outcome is unknown, and replaying an append would duplicate
// interactions.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first
	// (0 = DefaultRetryPolicy.MaxAttempts; 1 disables retries).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; it doubles per
	// attempt with jitter in [delay/2, delay] to decorrelate clients
	// (0 = DefaultRetryPolicy.BaseDelay).
	BaseDelay time.Duration
	// MaxDelay caps the backoff, including server Retry-After hints
	// (0 = DefaultRetryPolicy.MaxDelay).
	MaxDelay time.Duration
}

// DefaultRetryPolicy is the policy NewClient installs: a handful of quick
// attempts that ride out a shed burst or a repair snapshot without turning
// a genuinely down server into minutes of blocking.
var DefaultRetryPolicy = RetryPolicy{MaxAttempts: 4, BaseDelay: 100 * time.Millisecond, MaxDelay: 5 * time.Second}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = DefaultRetryPolicy.MaxAttempts
	}
	if p.BaseDelay == 0 {
		p.BaseDelay = DefaultRetryPolicy.BaseDelay
	}
	if p.MaxDelay == 0 {
		p.MaxDelay = DefaultRetryPolicy.MaxDelay
	}
	return p
}

// delay computes the sleep before retry number retry (1-based), preferring
// the server's Retry-After hint when it is longer than the backoff.
func (p RetryPolicy) delay(retry int, hint time.Duration) time.Duration {
	d := p.BaseDelay << (retry - 1)
	if d > p.MaxDelay || d <= 0 { // <= 0: shift overflow
		d = p.MaxDelay
	}
	// Full jitter on the upper half: uniformly in [d/2, d].
	d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	if hint > d {
		d = hint
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	return d
}

// HTTPError is the error returned for any non-200 response, exposing the
// status code and the server's Retry-After hint (zero when absent). Use
// errors.As to inspect it.
type HTTPError struct {
	Status  int
	Message string // server-provided error text, or the raw body
	// RetryAfter is the parsed Retry-After hint of 429/503 answers.
	RetryAfter time.Duration
	structured bool // Message came from the JSON error envelope
}

func (e *HTTPError) Error() string {
	if e.structured {
		return fmt.Sprintf("flownetd: %s (HTTP %d)", e.Message, e.Status)
	}
	return fmt.Sprintf("flownetd: HTTP %d: %s", e.Status, e.Message)
}

// Attempt describes one HTTP exchange as seen by the client, reported to
// the WithObserver hook once per attempt — retries included, so a request
// that rides out two sheds reports three attempts. Status is the HTTP
// status when a response arrived, 0 when the exchange died in transport.
// Err is nil on success and otherwise carries the failure: the *HTTPError
// for non-200 statuses, or the transport/decode error.
type Attempt struct {
	Method string
	Path   string // URL path only, no query — safe to use as a label
	Status int    // HTTP status, 0 when the exchange died in transport
	Err    error  // nil exactly when Status is 200
	// CacheStatus is the X-Flownet-Cache response header ("hit", "miss",
	// "bypass"; empty on routes without the cache or on transport errors).
	CacheStatus string
	// Duration is the attempt's wall-clock time: request sent to response
	// body fully read.
	Duration time.Duration
}

// Client is a minimal client for a flownetd server. The zero value is not
// usable; construct with NewClient. Methods are safe for concurrent use.
type Client struct {
	base    string
	hc      *http.Client
	retry   RetryPolicy
	observe func(Attempt)
}

// NewClient returns a client for the flownetd instance at baseURL (e.g.
// "http://localhost:8080"), with a DefaultTimeout-bounded http.Client and
// DefaultRetryPolicy retries for idempotent requests.
func NewClient(baseURL string) *Client {
	return &Client{
		base:  strings.TrimSuffix(baseURL, "/"),
		hc:    &http.Client{Timeout: DefaultTimeout},
		retry: DefaultRetryPolicy,
	}
}

// WithHTTPClient replaces the underlying *http.Client (timeouts, proxies,
// test transports) and returns c for chaining.
func (c *Client) WithHTTPClient(hc *http.Client) *Client {
	c.hc = hc
	return c
}

// WithRetryPolicy replaces the retry policy and returns c for chaining.
// RetryPolicy{MaxAttempts: 1} disables retries entirely.
func (c *Client) WithRetryPolicy(p RetryPolicy) *Client {
	c.retry = p
	return c
}

// WithObserver installs fn as the per-attempt telemetry hook and returns c
// for chaining. fn runs synchronously on the calling goroutine after every
// HTTP attempt (including each retry), so a load generator measuring
// client-side latency sees every exchange, not just the final outcome. fn
// must be fast and safe for concurrent use when the client is shared.
func (c *Client) WithObserver(fn func(Attempt)) *Client {
	c.observe = fn
	return c
}

// Flow computes the maximum flow from source to sink in the named network
// (network may be empty when the server has exactly one loaded).
func (c *Client) Flow(ctx context.Context, network string, source, sink VertexID, opts *FlowQueryOptions) (FlowResult, error) {
	q := url.Values{}
	if network != "" {
		q.Set("net", network)
	}
	q.Set("source", strconv.Itoa(int(source)))
	q.Set("sink", strconv.Itoa(int(sink)))
	addFlowOptions(q, opts, false)
	var res FlowResult
	err := c.get(ctx, "/flow", q, &res)
	return res, err
}

// SeedFlow computes the §6.2 returning-path flow around a seed vertex.
func (c *Client) SeedFlow(ctx context.Context, network string, seed VertexID, opts *FlowQueryOptions) (FlowResult, error) {
	q := url.Values{}
	if network != "" {
		q.Set("net", network)
	}
	q.Set("seed", strconv.Itoa(int(seed)))
	addFlowOptions(q, opts, true)
	var res FlowResult
	err := c.get(ctx, "/flow", q, &res)
	return res, err
}

// BatchFlowSeeds runs the per-seed batch experiment on the server.
func (c *Client) BatchFlowSeeds(ctx context.Context, req BatchRequest) (BatchResult, error) {
	var res BatchResult
	err := c.post(ctx, "/flow/batch", req, &res, true)
	return res, err
}

// Patterns runs one pattern search ("P1".."P6", "RP1".."RP3") in mode "pb"
// (precomputed tables; the default when mode is empty) or "gb".
func (c *Client) Patterns(ctx context.Context, network, patternName, mode string, opts *PatternQueryOptions) (PatternResult, error) {
	q := url.Values{}
	if network != "" {
		q.Set("net", network)
	}
	q.Set("pattern", patternName)
	if mode != "" {
		q.Set("mode", mode)
	}
	if opts != nil {
		if opts.MaxInstances > 0 {
			q.Set("max", strconv.FormatInt(opts.MaxInstances, 10))
		}
		if opts.MinPaths > 0 {
			q.Set("minpaths", strconv.Itoa(opts.MinPaths))
		}
		if opts.Workers != 0 {
			q.Set("workers", strconv.Itoa(opts.Workers))
		}
	}
	var res PatternResult
	err := c.get(ctx, "/patterns", q, &res)
	return res, err
}

// Ingest appends a time-ordered interaction batch to a loaded network
// (POST /ingest). The server must run with ingestion enabled (flownetd
// -allow-ingest); the returned result reports what was appended, parked
// and the network's new generation.
func (c *Client) Ingest(ctx context.Context, req IngestRequest) (IngestResult, error) {
	var res IngestResult
	err := c.post(ctx, "/ingest", req, &res, false)
	return res, err
}

// CreateNetwork registers a new empty network with the given vertex count
// (POST /networks), ready for Ingest. Requires -allow-ingest.
func (c *Client) CreateNetwork(ctx context.Context, name string, vertices int) (CreateNetworkResult, error) {
	var res CreateNetworkResult
	err := c.post(ctx, "/networks", CreateNetworkRequest{Name: name, Vertices: vertices}, &res, false)
	return res, err
}

// Networks lists the server's loaded networks.
func (c *Client) Networks(ctx context.Context) (map[string]NetworkInfo, error) {
	var res map[string]NetworkInfo
	err := c.get(ctx, "/networks", nil, &res)
	return res, err
}

// Stats fetches the server's counters.
func (c *Client) Stats(ctx context.Context) (StatsResult, error) {
	var res StatsResult
	err := c.get(ctx, "/stats", nil, &res)
	return res, err
}

// Healthz fetches liveness plus every network's durability state — the
// checkpoint lag an operator watches on a flownetd running with -data-dir.
func (c *Client) Healthz(ctx context.Context) (HealthzResult, error) {
	var res HealthzResult
	err := c.get(ctx, "/healthz", nil, &res)
	return res, err
}

func addFlowOptions(q url.Values, opts *FlowQueryOptions, seedMode bool) {
	if opts == nil {
		return
	}
	if seedMode {
		if opts.Hops != 0 {
			q.Set("hops", strconv.Itoa(opts.Hops))
		}
		if opts.MaxInteractions != 0 {
			q.Set("maxinteractions", strconv.Itoa(opts.MaxInteractions))
		}
	}
	if opts.WindowFrom != nil {
		q.Set("from", strconv.FormatFloat(*opts.WindowFrom, 'g', -1, 64))
	}
	if opts.WindowTo != nil {
		q.Set("to", strconv.FormatFloat(*opts.WindowTo, 'g', -1, 64))
	}
}

// post issues a POST. retryable must be true only for requests that are
// safe to replay (/flow/batch computes without writing); ingestion and
// network creation pass false because a transport error leaves the outcome
// unknown and a replay would duplicate the write.
func (c *Client) post(ctx context.Context, path string, in, out any, retryable bool) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	return c.do(ctx, http.MethodPost, c.base+path, body, out, retryable)
}

func (c *Client) get(ctx context.Context, path string, q url.Values, out any) error {
	u := c.base + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	return c.do(ctx, http.MethodGet, u, nil, out, true)
}

// maxResponseBytes bounds how much of a response body the client reads; a
// body at or over the bound is reported as an explicit error rather than
// silently truncated into a JSON decode failure.
const maxResponseBytes = 64 << 20

// do runs one request to completion, retrying transient failures under the
// client's RetryPolicy when retryable is true. Each attempt rebuilds the
// *http.Request from scratch (a consumed body reader cannot be resent).
func (c *Client) do(ctx context.Context, method, u string, body []byte, out any, retryable bool) error {
	p := c.retry.withDefaults()
	attempts := p.MaxAttempts
	if !retryable || attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for attempt := 1; ; attempt++ {
		var br io.Reader
		if body != nil {
			br = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, u, br)
		if err != nil {
			return err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		lastErr = c.doOnce(req, out)
		if lastErr == nil || attempt >= attempts || !transientError(lastErr) {
			return lastErr
		}
		select {
		case <-time.After(p.delay(attempt, retryAfterHint(lastErr))):
		case <-ctx.Done():
			// The caller gave up while we were backing off; its reason
			// trumps the transient failure we were about to retry.
			return ctx.Err()
		}
	}
}

// transientError reports whether err is worth retrying: a transport-level
// failure (connection refused or reset, a timed-out exchange) or a response
// the server explicitly marked retryable (429, 503 — shed load, read-only
// shard). Context cancellation is the caller's decision, never retried;
// other HTTP statuses (400s, 500, 504) are authoritative answers.
func transientError(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var he *HTTPError
	if errors.As(err, &he) {
		return he.Status == http.StatusTooManyRequests || he.Status == http.StatusServiceUnavailable
	}
	var ue *url.Error
	return errors.As(err, &ue)
}

// retryAfterHint extracts the server's Retry-After hint, zero when absent.
func retryAfterHint(err error) time.Duration {
	var he *HTTPError
	if errors.As(err, &he) {
		return he.RetryAfter
	}
	return 0
}

// parseRetryAfter parses a Retry-After header: delta-seconds or HTTP-date.
func parseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	if secs, err := strconv.Atoi(h); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(h); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

// doOnce performs a single exchange, decodes the answer into out, and
// reports the attempt to the observer (when installed).
func (c *Client) doOnce(req *http.Request, out any) error {
	var (
		status int
		cache  string
		start  = time.Now()
	)
	err := func() error {
		resp, err := c.hc.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		status = resp.StatusCode
		cache = resp.Header.Get("X-Flownet-Cache")
		body, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes+1))
		if err != nil {
			return err
		}
		if len(body) > maxResponseBytes {
			return fmt.Errorf("flownetd: response body exceeds %d bytes", maxResponseBytes)
		}
		if resp.StatusCode != http.StatusOK {
			he := &HTTPError{
				Status:     resp.StatusCode,
				Message:    string(bytes.TrimSpace(body)),
				RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
			}
			var eb struct {
				Error string `json:"error"`
			}
			if json.Unmarshal(body, &eb) == nil && eb.Error != "" {
				he.Message, he.structured = eb.Error, true
			}
			return he
		}
		return json.Unmarshal(body, out)
	}()
	if c.observe != nil {
		c.observe(Attempt{
			Method:      req.Method,
			Path:        req.URL.Path,
			Status:      status,
			Err:         err,
			CacheStatus: cache,
			Duration:    time.Since(start),
		})
	}
	return err
}
