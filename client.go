package flownet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"flownet/internal/server"
)

// Wire types of the flownetd HTTP/JSON API (see internal/server and
// cmd/flownetd): the client below decodes exactly what the server encodes.
type (
	// FlowResult is one GET /flow answer.
	FlowResult = server.FlowResult
	// BatchRequest is the POST /flow/batch body.
	BatchRequest = server.BatchRequest
	// BatchResult is the POST /flow/batch answer.
	BatchResult = server.BatchResult
	// SeedFlowResult is one per-seed outcome inside a BatchResult.
	SeedFlowResult = server.SeedFlowResult
	// PatternResult is one GET /patterns answer.
	PatternResult = server.PatternResult
	// NetworkInfo describes one loaded network.
	NetworkInfo = server.NetworkInfo
	// EndpointStats are per-endpoint counters of GET /stats.
	EndpointStats = server.EndpointStats
	// StatsResult is the GET /stats answer.
	StatsResult = server.StatsResult
	// IngestInteraction is one streamed interaction in a POST /ingest body.
	IngestInteraction = server.IngestInteraction
	// IngestRequest is the POST /ingest body.
	IngestRequest = server.IngestRequest
	// IngestResult is the POST /ingest answer.
	IngestResult = server.IngestResult
	// CreateNetworkRequest is the POST /networks body.
	CreateNetworkRequest = server.CreateNetworkRequest
	// CreateNetworkResult is the POST /networks answer.
	CreateNetworkResult = server.CreateNetworkResult
	// StoreStats are the store-wide durability counters inside a
	// StatsResult (WAL appends/fsyncs, snapshots, recoveries).
	StoreStats = server.StoreStats
	// DurabilityInfo is one network's durability state inside a
	// HealthzResult (pending WAL records/bytes, last snapshot time).
	DurabilityInfo = server.DurabilityInfo
	// HealthzResult is the GET /healthz answer.
	HealthzResult = server.HealthzResult
)

// FlowQueryOptions are the optional knobs of Client.Flow and
// Client.SeedFlow. The zero value selects the server defaults.
type FlowQueryOptions struct {
	// Hops bounds the §6.2 returning-path extraction (seed queries only;
	// 0 = server default 3).
	Hops int
	// MaxInteractions caps extracted subgraphs (seed queries only; 0 =
	// server default 10000, negative = no cap).
	MaxInteractions int
	// WindowFrom / WindowTo restrict flow to interactions inside the
	// inclusive time window; nil leaves the corresponding side unbounded.
	WindowFrom, WindowTo *float64
}

// PatternQueryOptions are the optional knobs of Client.Patterns. The zero
// value searches exhaustively with the server's worker pool.
type PatternQueryOptions struct {
	// MaxInstances truncates the search (0 = exhaustive).
	MaxInstances int64
	// MinPaths filters relaxed-pattern instances by bundled path count.
	MinPaths int
	// Workers requests a per-query worker bound (clamped by the server).
	Workers int
}

// Client is a minimal client for a flownetd server. The zero value is not
// usable; construct with NewClient. Methods are safe for concurrent use.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the flownetd instance at baseURL (e.g.
// "http://localhost:8080"), using http.DefaultClient.
func NewClient(baseURL string) *Client {
	return &Client{base: strings.TrimSuffix(baseURL, "/"), hc: http.DefaultClient}
}

// WithHTTPClient replaces the underlying *http.Client (timeouts, proxies,
// test transports) and returns c for chaining.
func (c *Client) WithHTTPClient(hc *http.Client) *Client {
	c.hc = hc
	return c
}

// Flow computes the maximum flow from source to sink in the named network
// (network may be empty when the server has exactly one loaded).
func (c *Client) Flow(ctx context.Context, network string, source, sink VertexID, opts *FlowQueryOptions) (FlowResult, error) {
	q := url.Values{}
	if network != "" {
		q.Set("net", network)
	}
	q.Set("source", strconv.Itoa(int(source)))
	q.Set("sink", strconv.Itoa(int(sink)))
	addFlowOptions(q, opts, false)
	var res FlowResult
	err := c.get(ctx, "/flow", q, &res)
	return res, err
}

// SeedFlow computes the §6.2 returning-path flow around a seed vertex.
func (c *Client) SeedFlow(ctx context.Context, network string, seed VertexID, opts *FlowQueryOptions) (FlowResult, error) {
	q := url.Values{}
	if network != "" {
		q.Set("net", network)
	}
	q.Set("seed", strconv.Itoa(int(seed)))
	addFlowOptions(q, opts, true)
	var res FlowResult
	err := c.get(ctx, "/flow", q, &res)
	return res, err
}

// BatchFlowSeeds runs the per-seed batch experiment on the server.
func (c *Client) BatchFlowSeeds(ctx context.Context, req BatchRequest) (BatchResult, error) {
	var res BatchResult
	err := c.post(ctx, "/flow/batch", req, &res)
	return res, err
}

// Patterns runs one pattern search ("P1".."P6", "RP1".."RP3") in mode "pb"
// (precomputed tables; the default when mode is empty) or "gb".
func (c *Client) Patterns(ctx context.Context, network, patternName, mode string, opts *PatternQueryOptions) (PatternResult, error) {
	q := url.Values{}
	if network != "" {
		q.Set("net", network)
	}
	q.Set("pattern", patternName)
	if mode != "" {
		q.Set("mode", mode)
	}
	if opts != nil {
		if opts.MaxInstances > 0 {
			q.Set("max", strconv.FormatInt(opts.MaxInstances, 10))
		}
		if opts.MinPaths > 0 {
			q.Set("minpaths", strconv.Itoa(opts.MinPaths))
		}
		if opts.Workers != 0 {
			q.Set("workers", strconv.Itoa(opts.Workers))
		}
	}
	var res PatternResult
	err := c.get(ctx, "/patterns", q, &res)
	return res, err
}

// Ingest appends a time-ordered interaction batch to a loaded network
// (POST /ingest). The server must run with ingestion enabled (flownetd
// -allow-ingest); the returned result reports what was appended, parked
// and the network's new generation.
func (c *Client) Ingest(ctx context.Context, req IngestRequest) (IngestResult, error) {
	var res IngestResult
	err := c.post(ctx, "/ingest", req, &res)
	return res, err
}

// CreateNetwork registers a new empty network with the given vertex count
// (POST /networks), ready for Ingest. Requires -allow-ingest.
func (c *Client) CreateNetwork(ctx context.Context, name string, vertices int) (CreateNetworkResult, error) {
	var res CreateNetworkResult
	err := c.post(ctx, "/networks", CreateNetworkRequest{Name: name, Vertices: vertices}, &res)
	return res, err
}

// Networks lists the server's loaded networks.
func (c *Client) Networks(ctx context.Context) (map[string]NetworkInfo, error) {
	var res map[string]NetworkInfo
	err := c.get(ctx, "/networks", nil, &res)
	return res, err
}

// Stats fetches the server's counters.
func (c *Client) Stats(ctx context.Context) (StatsResult, error) {
	var res StatsResult
	err := c.get(ctx, "/stats", nil, &res)
	return res, err
}

// Healthz fetches liveness plus every network's durability state — the
// checkpoint lag an operator watches on a flownetd running with -data-dir.
func (c *Client) Healthz(ctx context.Context) (HealthzResult, error) {
	var res HealthzResult
	err := c.get(ctx, "/healthz", nil, &res)
	return res, err
}

func addFlowOptions(q url.Values, opts *FlowQueryOptions, seedMode bool) {
	if opts == nil {
		return
	}
	if seedMode {
		if opts.Hops != 0 {
			q.Set("hops", strconv.Itoa(opts.Hops))
		}
		if opts.MaxInteractions != 0 {
			q.Set("maxinteractions", strconv.Itoa(opts.MaxInteractions))
		}
	}
	if opts.WindowFrom != nil {
		q.Set("from", strconv.FormatFloat(*opts.WindowFrom, 'g', -1, 64))
	}
	if opts.WindowTo != nil {
		q.Set("to", strconv.FormatFloat(*opts.WindowTo, 'g', -1, 64))
	}
}

func (c *Client) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, out)
}

func (c *Client) get(ctx context.Context, path string, q url.Values, out any) error {
	u := c.base + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	return c.do(req, out)
}

// maxResponseBytes bounds how much of a response body the client reads; a
// body at or over the bound is reported as an explicit error rather than
// silently truncated into a JSON decode failure.
const maxResponseBytes = 64 << 20

func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes+1))
	if err != nil {
		return err
	}
	if len(body) > maxResponseBytes {
		return fmt.Errorf("flownetd: response body exceeds %d bytes", maxResponseBytes)
	}
	if resp.StatusCode != http.StatusOK {
		var eb struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &eb) == nil && eb.Error != "" {
			return fmt.Errorf("flownetd: %s (HTTP %d)", eb.Error, resp.StatusCode)
		}
		return fmt.Errorf("flownetd: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	return json.Unmarshal(body, out)
}
